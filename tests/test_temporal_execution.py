"""Tests for the temporal-coherence execution layer.

The contract under test: exact-mode temporal execution is bit-identical to
the non-temporal baseline across the plain, windowed, multi-query and
aggregate paths (every outcome is re-derived and verified, so this holds on
*any* stream, moving or static), while the simulated cost records
reused-vs-computed calls; approximate mode reports its reuse rate; the
delta gate and the cost counters behave as specified.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.aggregates import AggregateMonitor, AggregateQuerySpec, query_indicator_control
from repro.cost import CostBreakdown, SimulatedClock
from repro.detection import ReferenceDetector
from repro.query import (
    DeltaGate,
    PlannerConfig,
    QueryBuilder,
    QueryPlanner,
    StreamingQueryExecutor,
    TemporalConfig,
    delta_score,
    frame_signature,
    parse_query,
)
from repro.spatial.geometry import Point
from repro.video.datasets import JACKSON_PROFILE
from repro.video.motion import ParkedMotion
from repro.video.objects import TrackedObject, default_class_registry
from repro.video.renderer import FrameRenderer, RendererConfig
from repro.video.scene import Scene, SceneConfig
from repro.video.stream import VideoStream

WINDOWED_TEXT = """
SELECT cameraID, frameID
FROM (PROCESS inputVideo PRODUCE cameraID, frameID, vehBox1 USING VehDetector)
WINDOW HOPPING (SIZE 20, ADVANCE BY 10)
WHERE COUNT(car) >= 1
"""


@pytest.fixture(scope="module")
def low_motion_stream() -> VideoStream:
    """A mostly-static surveillance stream: parked objects plus one event.

    Two cars and a person stay parked for the whole stream; a third car
    appears at frame 20 and leaves at frame 40, so the only pixel changes
    are per-frame sensor noise and the two event boundaries.
    """
    num_frames = 60
    registry = default_class_registry()
    config = SceneConfig(
        frame_width=448,
        frame_height=448,
        num_frames=num_frames,
        mean_count=3.0,
        std_count=0.0,
        count_autocorrelation=0.9,
        class_mix=JACKSON_PROFILE.classes,
        max_count=4,
        seed=17,
    )
    car = registry["car"]
    person = registry["person"]
    tracks = [
        TrackedObject(0, car, 46.0, 24.0, "blue", 0, num_frames, ParkedMotion(Point(120, 200))),
        TrackedObject(1, car, 42.0, 22.0, "white", 0, num_frames, ParkedMotion(Point(310, 260))),
        TrackedObject(2, person, 14.0, 38.0, "red", 0, num_frames, ParkedMotion(Point(220, 390))),
        TrackedObject(3, car, 44.0, 23.0, "black", 20, 40, ParkedMotion(Point(210, 140))),
    ]
    active = [
        [track.track_id for track in tracks if track.alive_at(index)]
        for index in range(num_frames)
    ]
    scene = Scene(config=config, tracks=tracks, active_tracks_per_frame=active)
    renderer = FrameRenderer(RendererConfig(output_size=112, seed=17))
    return VideoStream(scene=scene, renderer=renderer, name="low-motion")


@pytest.fixture(scope="module")
def jackson_planner_filters(trained_od_filter, trained_od_cof):
    return {"od": trained_od_filter, "od_cof": trained_od_cof}


def _executor(class_names, seed=42):
    return StreamingQueryExecutor(ReferenceDetector(class_names=class_names, seed=seed))


# ----------------------------------------------------------------------
# DeltaGate and signatures
# ----------------------------------------------------------------------
def test_frame_signature_shape_and_score(rng):
    image = rng.integers(0, 255, size=(112, 112, 3)).astype(np.uint8)
    signature = frame_signature(image, downsample=8)
    assert signature.shape == (14, 14)
    assert delta_score(signature, signature) == 0.0
    shifted = frame_signature(np.clip(image.astype(int) + 20, 0, 255).astype(np.uint8), 8)
    assert delta_score(signature, shifted) == pytest.approx(20.0, abs=1.0)
    with pytest.raises(ValueError):
        delta_score(signature, signature[:7, :7])


def test_delta_gate_decisions(rng):
    config = TemporalConfig(delta_threshold=5.0, downsample=8, keyframe_interval=2)
    gate = DeltaGate(config)
    image = rng.integers(60, 120, size=(112, 112, 3)).astype(np.uint8)
    # No keyframe yet -> compute.
    assert not gate.decide(image)
    gate.set_keyframe(image, outcome="key")
    # Identical frame -> reuse; streak advances.
    assert gate.decide(image)
    gate.mark_reused()
    assert gate.outcome == "key"
    # A big change -> refresh.
    changed = np.clip(image.astype(int) + 40, 0, 255).astype(np.uint8)
    assert not gate.decide(changed)
    # Keyframe-interval refresh: after 2 reuses the gate refuses the streak.
    assert gate.decide(image)
    gate.mark_reused()
    assert not gate.decide(image)
    # Context changes disable reuse even for identical pixels.
    gate.set_keyframe(image, outcome="key", context=(0, 1))
    assert gate.decide(image, context=(0, 1))
    assert not gate.decide(image, context=(0,))


def test_temporal_config_validation():
    with pytest.raises(ValueError):
        TemporalConfig(delta_threshold=-1.0)
    with pytest.raises(ValueError):
        TemporalConfig(downsample=0)
    with pytest.raises(ValueError):
        TemporalConfig(keyframe_interval=0)
    with pytest.raises(ValueError):
        TemporalConfig(max_stride=0)


# ----------------------------------------------------------------------
# Cost counters
# ----------------------------------------------------------------------
def test_clock_reuse_counters():
    clock = SimulatedClock()
    clock.charge("od_filter", 1.9)
    clock.reuse("od_filter", calls=3)
    clock.reuse("mask_rcnn")
    breakdown = clock.breakdown
    assert breakdown.per_component_reused == {"od_filter": 3, "mask_rcnn": 1}
    assert breakdown.total_reused == 4
    assert breakdown.total_calls == 1
    assert breakdown.reuse_fraction == pytest.approx(4 / 5)
    # Reused calls never charge milliseconds.
    assert breakdown.total_ms == pytest.approx(1.9)
    with pytest.raises(ValueError):
        clock.reuse("od_filter", calls=-1)


def test_reuse_counters_survive_snapshot_delta_and_merge():
    clock = SimulatedClock()
    clock.charge("f", 1.0)
    clock.reuse("f", calls=2)
    snapshot = clock.snapshot()
    clock.reuse("f", calls=5)
    clock.reuse("g")
    delta = clock.delta_since(snapshot)
    assert delta.per_component_reused == {"f": 5, "g": 1}
    merged = snapshot.merged_with(delta)
    assert merged.per_component_reused == {"f": 7, "g": 1}
    assert CostBreakdown().reuse_fraction != CostBreakdown().reuse_fraction  # nan


# ----------------------------------------------------------------------
# Exact-mode parity: plain / windowed / multi-query / aggregate
# ----------------------------------------------------------------------
@pytest.mark.parametrize("max_stride", [1, 8])
def test_exact_parity_plain(tiny_jackson, jackson_planner_filters, max_stride):
    planner = QueryPlanner(
        jackson_planner_filters, PlannerConfig(count_tolerance=1, location_dilation=1)
    )
    query = QueryBuilder("q").count("car").equals(1).build()
    cascade = planner.plan(query)
    baseline = _executor(tiny_jackson.class_names).execute(query, tiny_jackson.test, cascade)
    temporal = _executor(tiny_jackson.class_names).execute(
        query,
        tiny_jackson.test,
        cascade,
        temporal=TemporalConfig(exact=True, max_stride=max_stride),
    )
    assert temporal.matched_frames == baseline.matched_frames
    assert temporal.temporal is not None
    stats = temporal.temporal
    assert (
        stats.frames_computed + stats.frames_reused + stats.frames_skipped
        == stats.frames_total
        == baseline.stats.frames_scanned
    )
    # Reuse happened and its avoided work is on the breakdown.
    assert stats.frames_reused > 0
    breakdown = temporal.stats.simulated_cost
    assert breakdown.total_reused == stats.filter_reuses + stats.detector_reuses
    assert temporal.stats.simulated_cost.total_ms < baseline.stats.simulated_cost.total_ms
    # Every reused/inherited frame was verified in exact mode.
    assert stats.verified_frames == stats.frames_reused + stats.frames_skipped
    if max_stride > 1:
        assert stats.max_stride_used > 1


def test_exact_parity_windowed(tiny_jackson, jackson_planner_filters):
    planner = QueryPlanner(
        jackson_planner_filters, PlannerConfig(count_tolerance=1, location_dilation=1)
    )
    query = parse_query(WINDOWED_TEXT, name="w")
    cascade = planner.plan(query)
    baseline = _executor(tiny_jackson.class_names).execute(query, tiny_jackson.test, cascade)
    temporal = _executor(tiny_jackson.class_names).execute(
        query,
        tiny_jackson.test,
        cascade,
        temporal=TemporalConfig(exact=True, max_stride=4),
    )
    assert temporal.matched_frames == baseline.matched_frames
    assert temporal.windows == baseline.windows


def test_exact_parity_multi_query(tiny_jackson, jackson_planner_filters):
    planner = QueryPlanner(
        jackson_planner_filters, PlannerConfig(count_tolerance=1, location_dilation=1)
    )
    queries = [
        QueryBuilder("m1").count("car").equals(1).build(),
        QueryBuilder("m2").count("car").at_least(1).count("person").at_least(1).build(),
        parse_query(WINDOWED_TEXT, name="m3"),
    ]
    cascades = [planner.plan(query) for query in queries]
    baseline = _executor(tiny_jackson.class_names).execute_many(
        queries, tiny_jackson.test, cascades
    )
    temporal = _executor(tiny_jackson.class_names).execute_many(
        queries,
        tiny_jackson.test,
        cascades,
        temporal=TemporalConfig(exact=True, max_stride=4),
    )
    for base, temp in zip(baseline, temporal):
        assert temp.matched_frames == base.matched_frames
        assert temp.windows == base.windows
        # Exact mode attributes standalone cost from the true outcomes, so
        # the per-query attribution matches the non-temporal run exactly.
        assert temp.stats.filter_invocations == base.stats.filter_invocations
        assert temp.stats.simulated_cost.per_component_ms == pytest.approx(
            base.stats.simulated_cost.per_component_ms
        )
    shared = temporal.shared
    assert shared.temporal is not None
    assert shared.temporal.frames_reused > 0
    # The shared scan performed less work than the non-temporal shared scan.
    assert shared.filter_computations < baseline.shared.filter_computations
    assert shared.cost.reused_calls > 0
    assert shared.cost.shared_ms < baseline.shared.cost.shared_ms


def test_exact_parity_aggregate(tiny_jackson, trained_od_filter):
    query = QueryBuilder("agg").count("car").at_least(1).build()
    spec = AggregateQuerySpec.from_query(query, [query_indicator_control(query)])
    detector = ReferenceDetector(class_names=tiny_jackson.class_names, seed=9)
    baseline = AggregateMonitor(
        detector=detector, frame_filter=trained_od_filter, seed=0
    ).estimate(spec, tiny_jackson.test, 30)
    temporal = AggregateMonitor(
        detector=detector, frame_filter=trained_od_filter, seed=0
    ).estimate(spec, tiny_jackson.test, 30, temporal=TemporalConfig(exact=True))
    assert temporal.plain == baseline.plain
    assert temporal.control_variate == baseline.control_variate
    assert temporal.temporal is not None
    assert temporal.temporal.frames_reused > 0
    assert temporal.per_frame_cost_ms < baseline.per_frame_cost_ms


def test_execute_aggregate_threads_temporal(tiny_jackson, jackson_planner_filters):
    planner = QueryPlanner(
        jackson_planner_filters, PlannerConfig(count_tolerance=1, location_dilation=1)
    )
    query = QueryBuilder("agg").count("car").at_least(1).build()
    spec = AggregateQuerySpec.from_query(query, [query_indicator_control(query)])
    cascade = planner.plan(query)
    result = _executor(tiny_jackson.class_names, seed=9).execute_aggregate(
        spec,
        tiny_jackson.test,
        cascade,
        sample_size=30,
        seed=0,
        temporal=TemporalConfig(exact=True),
    )
    assert result.reports[0].temporal is not None


# ----------------------------------------------------------------------
# Approximate mode and the low-motion stream
# ----------------------------------------------------------------------
def test_approximate_mode_reports_reuse_on_low_motion_stream(
    low_motion_stream, jackson_planner_filters
):
    planner = QueryPlanner(
        jackson_planner_filters, PlannerConfig(count_tolerance=1, location_dilation=1)
    )
    query = QueryBuilder("event").count("car").at_least(3).build()
    cascade = planner.plan(query)
    # The renderer's per-frame object shading flickers block means by up to
    # ~20 levels; the event boundaries jump by ~50.  A threshold of 30
    # treats flicker as stable and the event as change.
    config = TemporalConfig(
        exact=False, delta_threshold=30.0, max_stride=8, keyframe_interval=16
    )
    result = _executor(("car", "person")).execute(
        query, low_motion_stream, cascade, temporal=config
    )
    stats = result.temporal
    assert stats is not None
    assert stats.reuse_rate > 0.5
    assert stats.frames_computed < len(low_motion_stream) / 2
    # Approximate mode never verifies.
    assert stats.verified_frames == 0
    assert stats.reuse_mismatches == 0
    # The avoided work is visible on the cost breakdown.
    assert result.stats.simulated_cost.total_reused > 0
    assert not math.isnan(result.stats.simulated_cost.reuse_fraction)


def test_low_motion_exact_matches_baseline_with_big_savings(
    low_motion_stream, jackson_planner_filters
):
    planner = QueryPlanner(
        jackson_planner_filters, PlannerConfig(count_tolerance=1, location_dilation=1)
    )
    query = QueryBuilder("event").count("car").at_least(3).build()
    cascade = planner.plan(query)
    baseline = _executor(("car", "person")).execute(query, low_motion_stream, cascade)
    temporal = _executor(("car", "person")).execute(
        query,
        low_motion_stream,
        cascade,
        temporal=TemporalConfig(
            exact=True, delta_threshold=30.0, max_stride=8, keyframe_interval=16
        ),
    )
    assert temporal.matched_frames == baseline.matched_frames
    ratio = (
        baseline.stats.simulated_cost.total_ms / temporal.stats.simulated_cost.total_ms
    )
    assert ratio >= 3.0


def test_temporal_rejects_batch_size(tiny_jackson, jackson_planner_filters):
    planner = QueryPlanner(jackson_planner_filters, PlannerConfig())
    query = QueryBuilder("q").count("car").equals(1).build()
    cascade = planner.plan(query)
    executor = _executor(tiny_jackson.class_names)
    with pytest.raises(ValueError, match="sequential"):
        executor.execute(
            query, tiny_jackson.test, cascade, batch_size=8, temporal=TemporalConfig()
        )
    with pytest.raises(ValueError, match="sequential"):
        executor.execute_many(
            [query], tiny_jackson.test, [cascade], batch_size=8, temporal=TemporalConfig()
        )
