"""Tests for frame rendering and the stream abstraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.video.renderer import FrameRenderer, RendererConfig
from repro.video.scene import FrameGroundTruth
from repro.video.objects import default_class_registry, ObjectState
from repro.spatial.geometry import Box


def _truth_with_car(frame_index: int = 0) -> FrameGroundTruth:
    car = default_class_registry()["car"]
    state = ObjectState(
        track_id=0,
        object_class=car,
        box=Box.from_center(224, 224, 80, 40),
        color_name="blue",
    )
    return FrameGroundTruth(
        frame_index=frame_index, objects=(state,), frame_width=448, frame_height=448
    )


def test_render_produces_uint8_rgb():
    renderer = FrameRenderer(RendererConfig(output_size=64, seed=1))
    image = renderer.render(_truth_with_car())
    assert image.shape == (64, 64, 3)
    assert image.dtype == np.uint8


def test_rendering_is_deterministic_per_frame():
    renderer = FrameRenderer(RendererConfig(output_size=64, seed=1))
    a = renderer.render(_truth_with_car(frame_index=5))
    b = renderer.render(_truth_with_car(frame_index=5))
    assert np.array_equal(a, b)
    c = renderer.render(_truth_with_car(frame_index=6))
    assert not np.array_equal(a, c)  # per-frame sensor noise differs


def test_object_changes_pixels_at_its_location():
    renderer = FrameRenderer(RendererConfig(output_size=112, pixel_noise=0.0, seed=2))
    empty = FrameGroundTruth(frame_index=0, objects=(), frame_width=448, frame_height=448)
    background_only = renderer.render(empty)
    with_car = renderer.render(_truth_with_car())
    # The car's area (center of the frame, scaled to 112) must differ from background.
    region = (slice(50, 62), slice(46, 66))
    assert np.abs(with_car[region].astype(int) - background_only[region].astype(int)).mean() > 10
    # Far corners are untouched background.
    assert np.abs(with_car[:10, :10].astype(int) - background_only[:10, :10].astype(int)).mean() < 2


def test_stream_iteration_and_access(single_object_stream):
    stream = single_object_stream
    assert len(stream) == 40
    assert stream.duration_seconds == pytest.approx(40 / 30)
    frame = stream.frame(3)
    assert frame.index == 3
    assert frame.ground_truth.count >= 0
    frames = list(stream.iter_range(0, 6, 2))
    assert [f.index for f in frames] == [0, 2, 4]
    counts = stream.count_series()
    assert counts.shape == (40,)


def test_stream_sampling(single_object_stream, rng):
    indices = single_object_stream.sample_indices(10, rng)
    assert len(indices) == 10
    assert len(set(indices.tolist())) == 10
    assert all(0 <= i < 40 for i in indices)


def test_stream_rejects_bad_fps(single_object_stream):
    from repro.video.stream import VideoStream

    with pytest.raises(ValueError):
        VideoStream(scene=single_object_stream.scene, renderer=single_object_stream.renderer, fps=0)


# ----------------------------------------------------------------------
# LRU frame cache
# ----------------------------------------------------------------------
def test_frame_cache_hit_returns_identical_frame(single_object_stream):
    from repro.video.stream import VideoStream

    stream = VideoStream(
        scene=single_object_stream.scene,
        renderer=single_object_stream.renderer,
        frame_cache_size=4,
    )
    first = stream.frame(3)
    again = stream.frame(3)
    # Cache hit: the very same Frame object, no re-render.
    assert again is first
    # And the cached pixels equal a fresh render.
    fresh = VideoStream(
        scene=single_object_stream.scene,
        renderer=single_object_stream.renderer,
        frame_cache_size=0,
    ).frame(3)
    assert np.array_equal(first.image, fresh.image)


def test_frame_cache_evicts_least_recently_used(single_object_stream):
    from repro.video.stream import VideoStream

    stream = VideoStream(
        scene=single_object_stream.scene,
        renderer=single_object_stream.renderer,
        frame_cache_size=2,
    )
    frame0 = stream.frame(0)
    frame1 = stream.frame(1)
    assert stream.frame(0) is frame0  # touch 0 so 1 becomes the LRU entry
    stream.frame(2)  # evicts 1
    assert stream.frame(0) is frame0  # still cached
    assert stream.frame(1) is not frame1  # was evicted, re-rendered
    assert len(stream._frame_cache) == 2


def test_frame_cache_disabled(single_object_stream):
    from repro.video.stream import VideoStream

    stream = VideoStream(
        scene=single_object_stream.scene,
        renderer=single_object_stream.renderer,
        frame_cache_size=0,
    )
    assert stream.frame(0) is not stream.frame(0)
    assert len(stream._frame_cache) == 0
    with pytest.raises(ValueError):
        VideoStream(
            scene=single_object_stream.scene,
            renderer=single_object_stream.renderer,
            frame_cache_size=-1,
        )
