"""Fault injection, self-healing execution, quarantine and checkpoint/resume.

The fault layer's core promise is *bit-identical recovery*: any injected
fault that the retry policy or the worker supervisor can absorb (decode
error, filter/detector exception, worker crash or stall, queue stall,
shard crash, emitter raise) leaves the scan's output — matched frames,
windows, work counters, simulated cost — exactly equal to a fault-free
run, with the whole episode accounted on ``ExecutionStats.faults``.  A
fault that *exhausts* its budget quarantines the smallest possible frame
group (a frame for the detector, a chunk elsewhere) and the scan
continues; nothing else changes.  Checkpoint/restore extends the promise
across process death: a resumed session re-emits no window and skips
none.
"""

from __future__ import annotations

import pickle

import pytest

from repro.analysis import AnalysisError
from repro.cost import RETRY_BACKOFF_COMPONENT, SimulatedClock
from repro.detection import ReferenceDetector
from repro.faults import (
    FAULT_HOOK_SITES,
    FaultError,
    FaultExhausted,
    FaultInjector,
    FaultReport,
    QuarantineRecord,
    RetryPolicy,
    current_injector,
    current_report,
    install,
    maybe_install_from_env,
    parse_fault_spec,
    uninstall,
)
from repro.query import (
    FilterCascade,
    ParallelConfig,
    PlannerConfig,
    QueryBuilder,
    QueryPlanner,
    StreamingQueryExecutor,
    parse_query,
)
from repro.service import (
    BufferEmitter,
    CallbackEmitter,
    QueryService,
    StreamConfig,
)

DETECTOR_SEED = 77

WINDOWED_TEXT = """
SELECT cameraID, frameID
FROM (PROCESS inputVideo PRODUCE cameraID, frameID, vehBox1 USING VehDetector)
WINDOW HOPPING (SIZE 20, ADVANCE BY 10)
WHERE COUNT(car) >= 1
"""


# ----------------------------------------------------------------------
# Fixtures and helpers
# ----------------------------------------------------------------------
@pytest.fixture(autouse=True)
def _no_injector_leaks():
    """Every test must leave the hook modules clean."""
    assert current_injector() is None
    yield
    leaked = current_injector()
    uninstall()
    assert leaked is None, f"test leaked installed injector {leaked!r}"


@pytest.fixture(scope="module")
def od_planner(trained_od_filter):
    return QueryPlanner({"od": trained_od_filter}, PlannerConfig(count_tolerance=1))


@pytest.fixture(scope="module")
def cars_workload(od_planner):
    query = QueryBuilder("cars").count("car").at_least(1).build()
    return [query], [od_planner.plan(query)]


def _executor(tiny_jackson):
    return StreamingQueryExecutor(
        ReferenceDetector(class_names=tiny_jackson.class_names, seed=DETECTOR_SEED)
    )


def _frames(stream):
    return [stream.frame(index) for index in range(len(stream))]


def _assert_result_parity(result, baseline):
    assert result.query_name == baseline.query_name
    assert result.matched_frames == baseline.matched_frames
    assert result.stats.frames_scanned == baseline.stats.frames_scanned
    assert result.stats.frames_passed_filters == baseline.stats.frames_passed_filters
    assert result.stats.detector_invocations == baseline.stats.detector_invocations
    assert result.stats.filter_invocations == baseline.stats.filter_invocations
    assert (
        result.stats.simulated_cost.per_component_calls
        == baseline.stats.simulated_cost.per_component_calls
    )
    assert result.stats.simulated_cost.total_ms == pytest.approx(
        baseline.stats.simulated_cost.total_ms
    )
    if baseline.windows is None:
        assert result.windows is None
    else:
        assert result.windows is not None
        assert [
            (w.bounds, w.matched_frames, w.stats) for w in result.windows
        ] == [(w.bounds, w.matched_frames, w.stats) for w in baseline.windows]


def _service_scan(
    queries,
    cascades,
    stream,
    class_names,
    *,
    chunk_size=10,
    emitters=(),
    start=False,
):
    """Feed ``stream`` through a fresh service; returns (results, stats)."""
    service = QueryService(emitters=list(emitters))
    service.attach_stream(
        "cam",
        ReferenceDetector(class_names=class_names, seed=DETECTOR_SEED),
        StreamConfig(chunk_size=chunk_size),
    )
    handles = [
        service.register("cam", query, cascade)
        for query, cascade in zip(queries, cascades)
    ]
    if start:
        service.start()
    frames = _frames(stream)
    for begin in range(0, len(frames), chunk_size):
        service.feed("cam", frames[begin : begin + chunk_size])
    if start:
        service.stop(drain=True)
    stats = service.stats().streams["cam"]
    results = service.close()
    return [results[handle] for handle in handles], stats


# ----------------------------------------------------------------------
# RetryPolicy and the injector's decision core
# ----------------------------------------------------------------------
def test_retry_policy_backoff_math_and_validation():
    policy = RetryPolicy(max_attempts=4, backoff_ms=2.0, backoff_factor=3.0)
    assert [policy.backoff_for(n) for n in (1, 2, 3)] == [2.0, 6.0, 18.0]
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_ms=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)


def test_schedule_is_consumed_per_attempt():
    injector = FaultInjector(schedule={("decode", 5): 2})
    assert injector.unfired() == (("decode", 5, 2),)
    assert injector.should_fault("decode", 5)
    assert injector.should_fault("decode", 5)
    assert not injector.should_fault("decode", 5)
    assert injector.unfired() == ()
    report = injector.report()
    assert report.injected_count == 2
    assert report.by_site() == {"decode": 2}
    assert [fault.occurrence for fault in report.injected] == [1, 2]


def test_rate_injection_is_seeded_and_interleaving_free():
    draws = lambda seed: [  # noqa: E731
        FaultInjector(seed=seed, rates={"emitter": 0.4}).should_fault("emitter", key)
        for key in range(64)
    ]
    first, second = draws(7), draws(7)
    assert first == second  # same seed, same decisions — no global RNG
    assert draws(8) != first  # the seed actually matters
    assert 0 < sum(first) < 64  # a 40% rate fires some but not all


def test_injector_rejects_bad_configuration():
    with pytest.raises(ValueError):
        FaultInjector(schedule={("warp_core", 1): 1})
    with pytest.raises(ValueError):
        FaultInjector(schedule={("decode", 1): 0})
    with pytest.raises(ValueError):
        FaultInjector(rates={"decode": 1.5})
    with pytest.raises(ValueError):
        FaultInjector(stall_seconds=-1.0)


def test_with_retry_recovers_and_charges_simulated_backoff():
    injector = FaultInjector(
        schedule={("filter", 0): 2},
        retry=RetryPolicy(max_attempts=3, backoff_ms=2.0, backoff_factor=2.0),
    )
    clock = SimulatedClock()
    calls = []
    result = injector.with_retry("filter", 0, clock, lambda: calls.append(1) or 42)
    assert result == 42
    assert len(calls) == 1  # both faults fired pre-attempt; the thunk ran once
    per_ms = clock.breakdown.per_component_ms
    assert per_ms[RETRY_BACKOFF_COMPONENT] == pytest.approx(6.0)
    report = injector.report()
    assert (report.retries, report.recovered, report.exhausted) == (2, 1, 0)
    assert report.backoff_ms == pytest.approx(6.0)


def test_with_retry_exhaustion_raises_with_attempt_count():
    injector = FaultInjector(
        schedule={("filter", 3): 3}, retry=RetryPolicy(max_attempts=3)
    )
    with pytest.raises(FaultExhausted) as excinfo:
        injector.with_retry("filter", 3, None, lambda: 1)
    assert excinfo.value.site == "filter"
    assert excinfo.value.key == 3
    assert excinfo.value.attempts == 3
    report = injector.report()
    assert (report.retries, report.recovered, report.exhausted) == (3, 0, 1)
    # FaultExhausted must cross process boundaries intact.
    clone = pickle.loads(pickle.dumps(excinfo.value))
    assert (clone.site, clone.key, clone.attempts) == ("filter", 3, 3)


def test_with_retry_never_retries_genuine_errors():
    injector = FaultInjector()
    attempts = []

    def thunk():
        attempts.append(1)
        raise ValueError("not an injected fault")

    with pytest.raises(ValueError):
        injector.with_retry("filter", 0, None, thunk)
    assert len(attempts) == 1
    assert injector.report().retries == 0


# ----------------------------------------------------------------------
# Hook installation
# ----------------------------------------------------------------------
def test_install_uninstall_and_double_install_semantics():
    import importlib

    injector = FaultInjector()
    install(injector)
    try:
        for module_name, attribute in FAULT_HOOK_SITES:
            module = importlib.import_module(module_name)
            assert getattr(module, attribute) is injector
        with pytest.raises(RuntimeError):
            install(FaultInjector())
        # A stale handle from another session must not evict the live one.
        uninstall(FaultInjector())
        assert current_injector() is injector
    finally:
        uninstall(injector)
    for module_name, attribute in FAULT_HOOK_SITES:
        module = importlib.import_module(module_name)
        assert getattr(module, attribute) is None
    uninstall()  # idempotent when nothing is installed


def test_injector_is_a_context_manager():
    with FaultInjector() as injector:
        assert current_injector() is injector
    assert current_injector() is None


def test_current_report_is_none_on_fault_free_runs():
    assert current_report(()) is None
    record = QuarantineRecord("runtime", 0, (0,), "boom")
    report = current_report((record,))
    assert isinstance(report, FaultReport)
    assert report.quarantined == (record,)
    assert report.injected_count == 0


# ----------------------------------------------------------------------
# REPRO_FAULTS spec parsing and env installation
# ----------------------------------------------------------------------
def test_parse_fault_spec_grammar():
    injector = parse_fault_spec(
        "seed=7, stall=0.5; retries=4, backoff=2.5,"
        " decode@12, filter@8x3, shard_crash@cam:1, emitter%0.05"
    )
    assert injector.seed == 7
    assert injector.stall_seconds == 0.5
    assert injector.retry.max_attempts == 4
    assert injector.retry.backoff_ms == 2.5
    assert injector._schedule == {
        ("decode", 12): 1,
        ("filter", 8): 3,
        ("shard_crash", "cam:1"): 1,
    }
    assert injector._rates == {"emitter": 0.05}
    with pytest.raises(ValueError):
        parse_fault_spec("warp=9")
    with pytest.raises(ValueError):
        parse_fault_spec("justaword")
    with pytest.raises(ValueError):
        parse_fault_spec("warp_core@1")


def test_maybe_install_from_env(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    assert maybe_install_from_env() is None

    monkeypatch.setenv("REPRO_FAULTS", "decode@3")
    injector = maybe_install_from_env()
    assert injector is not None and current_injector() is injector
    # A second caller (e.g. a service built inside the session) defers.
    assert maybe_install_from_env() is None
    uninstall(injector)


# ----------------------------------------------------------------------
# Golden fault-site tests: decode
# ----------------------------------------------------------------------
def test_decode_fault_recovers_bit_identical(cars_workload, tiny_jackson):
    queries, cascades = cars_workload
    baseline = _executor(tiny_jackson).execute_many(
        queries, tiny_jackson.test, cascades, batch_size=10
    )
    assert baseline[0].stats.faults is None  # fault-free runs carry None
    with FaultInjector(schedule={("decode", 3): 1}) as injector:
        faulted = _executor(tiny_jackson).execute_many(
            queries, tiny_jackson.test, cascades, batch_size=10
        )
    _assert_result_parity(faulted[0], baseline[0])
    report = faulted[0].stats.faults
    assert report.by_site() == {"decode": 1}
    assert report.recovered == 1
    assert report.quarantined == ()
    assert injector.unfired() == ()


def test_decode_exhaustion_quarantines_the_chunk(cars_workload, tiny_jackson):
    queries, cascades = cars_workload
    baseline = _executor(tiny_jackson).execute_many(
        queries, tiny_jackson.test, cascades, batch_size=10
    )
    retry = RetryPolicy(max_attempts=3)
    with FaultInjector(schedule={("decode", 3): 3}, retry=retry):
        faulted = _executor(tiny_jackson).execute_many(
            queries, tiny_jackson.test, cascades, batch_size=10
        )
    lost = set(range(0, 10))  # frame 3's chunk under batch_size=10
    # ``frames_scanned`` keeps the planned-coverage semantics; the gap is
    # carried by the quarantine record and visible in the work counters.
    assert (
        faulted[0].stats.filter_invocations
        == baseline[0].stats.filter_invocations - len(lost)
    )
    assert faulted[0].matched_frames == tuple(
        index for index in baseline[0].matched_frames if index not in lost
    )
    report = faulted[0].stats.faults
    assert report.exhausted == 1
    assert len(report.quarantined) == 1
    record = report.quarantined[0]
    assert record.site == "decode" and record.key == 3
    assert record.frames == tuple(sorted(lost))


# ----------------------------------------------------------------------
# Golden fault-site tests: filter and detector
# ----------------------------------------------------------------------
def test_filter_fault_recovers_bit_identical(cars_workload, tiny_jackson):
    queries, cascades = cars_workload
    baseline = _executor(tiny_jackson).execute_many(
        queries, tiny_jackson.test, cascades, batch_size=10
    )
    with FaultInjector(schedule={("filter", 10): 1}) as injector:
        faulted = _executor(tiny_jackson).execute_many(
            queries, tiny_jackson.test, cascades, batch_size=10
        )
    _assert_result_parity(faulted[0], baseline[0])
    assert faulted[0].stats.faults.by_site() == {"filter": 1}
    assert faulted[0].stats.faults.recovered == 1
    assert injector.unfired() == ()


def test_filter_poison_chunk_is_quarantined(cars_workload, tiny_jackson):
    queries, cascades = cars_workload
    baseline = _executor(tiny_jackson).execute_many(
        queries, tiny_jackson.test, cascades, batch_size=10
    )
    with FaultInjector(
        schedule={("filter", 10): 3}, retry=RetryPolicy(max_attempts=3)
    ):
        faulted = _executor(tiny_jackson).execute_many(
            queries, tiny_jackson.test, cascades, batch_size=10
        )
    lost = set(range(10, 20))
    assert (
        faulted[0].stats.filter_invocations
        == baseline[0].stats.filter_invocations - len(lost)
    )
    assert faulted[0].matched_frames == tuple(
        index for index in baseline[0].matched_frames if index not in lost
    )
    record = faulted[0].stats.faults.quarantined[0]
    assert record.site == "filter" and record.frames == tuple(sorted(lost))


def test_detector_exhaustion_quarantines_one_frame(tiny_jackson):
    # An empty cascade sends every frame to the detector.
    query = QueryBuilder("everything").count("car").at_least(0).build()
    baseline = _executor(tiny_jackson).execute_many(
        [query], tiny_jackson.test, [FilterCascade()], batch_size=10
    )
    with FaultInjector(
        schedule={("detector", 5): 3}, retry=RetryPolicy(max_attempts=3)
    ):
        faulted = _executor(tiny_jackson).execute_many(
            [query], tiny_jackson.test, [FilterCascade()], batch_size=10
        )
    # The quarantine is frame-granular: only frame 5 is lost.
    assert faulted[0].matched_frames == tuple(
        index for index in baseline[0].matched_frames if index != 5
    )
    # The frame passed its (empty) cascade before the detector gave up, so
    # per-query coverage stats keep it; the *shared* invocation counter is
    # the honest one — the detector never produced an answer for frame 5.
    assert (
        faulted.shared.detector_invocations
        == baseline.shared.detector_invocations - 1
    )
    report = faulted[0].stats.faults
    assert report.exhausted == 1
    assert len(report.quarantined) == 1
    record = report.quarantined[0]
    assert record.site == "detector" and record.frames == (5,)


def test_detector_fault_recovers_bit_identical(tiny_jackson):
    query = QueryBuilder("everything").count("car").at_least(0).build()
    baseline = _executor(tiny_jackson).execute_many(
        [query], tiny_jackson.test, [FilterCascade()], batch_size=10
    )
    with FaultInjector(schedule={("detector", 5): 2}):
        faulted = _executor(tiny_jackson).execute_many(
            [query], tiny_jackson.test, [FilterCascade()], batch_size=10
        )
    _assert_result_parity(faulted[0], baseline[0])
    assert faulted[0].stats.faults.recovered == 1


# ----------------------------------------------------------------------
# Golden fault-site tests: worker crash / stall under supervision
# ----------------------------------------------------------------------
@pytest.mark.parallel
@pytest.mark.parametrize("backend", ("thread", "process"))
def test_supervised_worker_crash_is_bit_identical(
    cars_workload, tiny_jackson, backend
):
    queries, cascades = cars_workload
    parallel = ParallelConfig(
        num_workers=2, backend=backend, chunk_size=8, supervise=True
    )
    baseline = _executor(tiny_jackson).execute_many(
        queries, tiny_jackson.test, cascades, parallel=parallel
    )
    with FaultInjector(schedule={("worker_crash", 1): 1}) as injector:
        faulted = _executor(tiny_jackson).execute_many(
            queries, tiny_jackson.test, cascades, parallel=parallel
        )
    _assert_result_parity(faulted[0], baseline[0])
    report = faulted[0].stats.faults
    assert report.by_site() == {"worker_crash": 1}
    assert report.redispatches >= 1
    if backend == "process":
        # A dead process breaks the pool; the supervisor must respawn it.
        assert report.respawns >= 1
    assert report.quarantined == ()
    assert injector.unfired() == ()


@pytest.mark.parallel
def test_supervised_worker_stall_is_respawned_bit_identical(
    cars_workload, tiny_jackson
):
    queries, cascades = cars_workload
    parallel = ParallelConfig(
        num_workers=2,
        backend="thread",
        chunk_size=8,
        supervise=True,
        worker_timeout_seconds=0.25,
    )
    baseline = _executor(tiny_jackson).execute_many(
        queries, tiny_jackson.test, cascades, parallel=parallel
    )
    with FaultInjector(
        schedule={("worker_stall", 2): 1}, stall_seconds=0.75
    ) as injector:
        faulted = _executor(tiny_jackson).execute_many(
            queries, tiny_jackson.test, cascades, parallel=parallel
        )
    _assert_result_parity(faulted[0], baseline[0])
    report = faulted[0].stats.faults
    assert report.by_site() == {"worker_stall": 1}
    assert report.respawns >= 1 and report.redispatches >= 1
    assert injector.unfired() == ()


@pytest.mark.parallel
def test_unsupervised_scan_fails_fast(cars_workload, tiny_jackson):
    queries, cascades = cars_workload
    parallel = ParallelConfig(num_workers=2, backend="thread", chunk_size=8)
    with FaultInjector(schedule={("worker_crash", 0): 1}):
        with pytest.raises(FaultError):
            _executor(tiny_jackson).execute_many(
                queries, tiny_jackson.test, cascades, parallel=parallel
            )


@pytest.mark.parallel
def test_worker_redispatch_exhaustion_quarantines_chunk(
    cars_workload, tiny_jackson
):
    queries, cascades = cars_workload
    parallel = ParallelConfig(
        num_workers=2,
        backend="thread",
        chunk_size=8,
        supervise=True,
        max_redispatch=1,
    )
    baseline = _executor(tiny_jackson).execute_many(
        queries, tiny_jackson.test, cascades, parallel=parallel
    )
    # Two crashes of chunk 1 exceed max_redispatch=1: poisoned chunk.
    with FaultInjector(schedule={("worker_crash", 1): 2}):
        faulted = _executor(tiny_jackson).execute_many(
            queries, tiny_jackson.test, cascades, parallel=parallel
        )
    lost = set(range(8, 16))  # chunk 1 under chunk_size=8
    assert faulted[0].matched_frames == tuple(
        index for index in baseline[0].matched_frames if index not in lost
    )
    report = faulted[0].stats.faults
    assert report.exhausted == 1
    record = report.quarantined[0]
    assert record.site == "worker" and record.frames == tuple(sorted(lost))


# ----------------------------------------------------------------------
# Golden fault-site tests: service-side sites (shard, queue, emitter)
# ----------------------------------------------------------------------
def test_shard_crash_self_heals_bit_identical(cars_workload, tiny_jackson):
    queries, cascades = cars_workload
    base_results, base_stats = _service_scan(
        queries, cascades, tiny_jackson.test, tiny_jackson.class_names
    )
    assert base_stats.faults is None
    with FaultInjector(schedule={("shard_crash", "cam:2"): 1}) as injector:
        results, stats = _service_scan(
            queries, cascades, tiny_jackson.test, tiny_jackson.class_names
        )
    _assert_result_parity(results[0], base_results[0])
    assert stats.quarantined_chunks == 0
    assert stats.faults.by_site() == {"shard_crash": 1}
    assert injector.unfired() == ()


def test_shard_crash_exhaustion_quarantines_and_emits(
    cars_workload, tiny_jackson
):
    queries, cascades = cars_workload
    base_results, _ = _service_scan(
        queries, cascades, tiny_jackson.test, tiny_jackson.class_names
    )
    buffer = BufferEmitter()
    # One more crash than the shard retry budget: the chunk is poisoned.
    with FaultInjector(schedule={("shard_crash", "cam:0"): 4}) as injector:
        results, stats = _service_scan(
            queries,
            cascades,
            tiny_jackson.test,
            tiny_jackson.class_names,
            emitters=[buffer],
        )
    lost = set(range(0, 10))
    assert results[0].matched_frames == tuple(
        index for index in base_results[0].matched_frames if index not in lost
    )
    assert stats.quarantined_chunks == 1
    assert stats.faults.quarantined[0].site == "shard_crash"
    emissions = buffer.emissions(kind="fault")
    assert len(emissions) == 1
    assert emissions[0].handle == -1  # quarantine is per stream, not per query
    assert emissions[0].fault.frames == tuple(sorted(lost))
    assert injector.unfired() == ()


def test_queue_stall_is_absorbed_by_the_timed_worker_loop(
    cars_workload, tiny_jackson
):
    queries, cascades = cars_workload
    base_results, _ = _service_scan(
        queries, cascades, tiny_jackson.test, tiny_jackson.class_names
    )
    with FaultInjector(schedule={("queue_stall", 0): 1}) as injector:
        results, stats = _service_scan(
            queries,
            cascades,
            tiny_jackson.test,
            tiny_jackson.class_names,
            start=True,
        )
    _assert_result_parity(results[0], base_results[0])
    assert stats.chunks_processed == stats.chunks_ingested
    assert stats.queue_depth == 0
    assert stats.faults.by_site() == {"queue_stall": 1}
    assert injector.unfired() == ()


def test_injected_emitter_raise_counts_and_warns_once(
    cars_workload, tiny_jackson
):
    queries, cascades = cars_workload
    buffer = BufferEmitter()
    with FaultInjector(
        schedule={("emitter", 0): 1, ("emitter", 1): 1}
    ) as injector:
        with pytest.warns(RuntimeWarning) as caught:
            results, stats = _service_scan(
                queries,
                cascades,
                tiny_jackson.test,
                tiny_jackson.class_names,
                emitters=[buffer],
            )
    assert stats.emitter_errors == 2
    # Two failures of the same emitter produce exactly one warning.
    assert len([w for w in caught if issubclass(w.category, RuntimeWarning)]) == 1
    assert results[0].matched_frames  # the scan itself was untouched
    assert injector.unfired() == ()


def test_raising_emitter_never_kills_the_shard(cars_workload, tiny_jackson):
    queries, cascades = cars_workload
    base_results, _ = _service_scan(
        queries, cascades, tiny_jackson.test, tiny_jackson.class_names
    )

    def explode(emission):
        raise RuntimeError("subscriber bug")

    buffer = BufferEmitter()
    with pytest.warns(RuntimeWarning, match="CallbackEmitter"):
        results, stats = _service_scan(
            queries,
            cascades,
            tiny_jackson.test,
            tiny_jackson.class_names,
            emitters=[CallbackEmitter(explode), buffer],
        )
    _assert_result_parity(results[0], base_results[0])
    assert stats.emitter_errors > 0
    # The healthy emitter kept receiving everything.
    assert buffer.matched_frames() == list(base_results[0].matched_frames)


# ----------------------------------------------------------------------
# Checkpoint / restore
# ----------------------------------------------------------------------
def _checkpoint_workload(od_planner):
    plain = QueryBuilder("cars").count("car").at_least(1).build()
    windowed = parse_query(WINDOWED_TEXT, name="windowed_cars")
    return (
        [plain, windowed],
        [od_planner.plan(plain), od_planner.plan(windowed)],
    )


def _attach_and_register(service, queries, cascades, class_names, emitter=None):
    service.attach_stream(
        "cam",
        ReferenceDetector(class_names=class_names, seed=DETECTOR_SEED),
        StreamConfig(chunk_size=10),
    )
    return [
        service.register("cam", query, cascade, emitter=emitter)
        for query, cascade in zip(queries, cascades)
    ]


def test_checkpoint_restore_round_trip_is_bit_identical(
    od_planner, tiny_jackson
):
    queries, cascades = _checkpoint_workload(od_planner)
    frames = _frames(tiny_jackson.test)

    # Uninterrupted run: the ground truth.
    full = QueryService()
    handles = _attach_and_register(
        full, queries, cascades, tiny_jackson.class_names
    )
    for begin in range(0, len(frames), 10):
        full.feed("cam", frames[begin : begin + 10])
    truth = full.close()

    # Crashed run: scan half, checkpoint, and throw the service away.
    first = QueryService()
    _attach_and_register(first, queries, cascades, tiny_jackson.class_names)
    for begin in range(0, 30, 10):
        first.feed("cam", frames[begin : begin + 10])
    snapshot = pickle.loads(pickle.dumps(first.checkpoint("cam")))
    first.close()

    # Resumed run: fresh service, same queries in the same order.
    buffer = BufferEmitter()
    resumed = QueryService(emitters=[buffer])
    new_handles = _attach_and_register(
        resumed, queries, cascades, tiny_jackson.class_names
    )
    resumed.restore_stream("cam", snapshot)
    for begin in range(30, len(frames), 10):
        resumed.feed("cam", frames[begin : begin + 10])
    results = resumed.close()

    for old, new in zip(handles, new_handles):
        _assert_result_parity(results[new], truth[old])
    # Windows already emitted before the checkpoint are never re-emitted:
    # frames 0..29 closed the windows starting at 0 and 10, so the resumed
    # service emits only the remaining ones.
    resumed_starts = [w.bounds.start for w in buffer.windows()]
    assert resumed_starts == [20, 30, 40]


def test_restore_rejects_mismatched_or_dirty_sessions(od_planner, tiny_jackson):
    queries, cascades = _checkpoint_workload(od_planner)
    frames = _frames(tiny_jackson.test)

    source = QueryService()
    _attach_and_register(source, queries, cascades, tiny_jackson.class_names)
    source.feed("cam", frames[:10])
    snapshot = source.checkpoint("cam")
    source.close()

    # A session that has already scanned cannot be restored over.
    dirty = QueryService()
    _attach_and_register(dirty, queries, cascades, tiny_jackson.class_names)
    dirty.feed("cam", frames[:10])
    with pytest.raises(RuntimeError, match="fresh session"):
        dirty.restore_stream("cam", snapshot)
    dirty.close()

    # The same queries must be re-registered in the same order.
    renamed = QueryService()
    other = QueryBuilder("someone_else").count("car").at_least(1).build()
    _attach_and_register(
        renamed, [other, queries[1]], cascades, tiny_jackson.class_names
    )
    with pytest.raises(ValueError, match="key mismatch"):
        renamed.restore_stream("cam", snapshot)
    renamed.close()

    # Unknown checkpoint versions are refused outright.
    refused = QueryService()
    _attach_and_register(refused, queries, cascades, tiny_jackson.class_names)
    with pytest.raises(ValueError, match="version"):
        refused.restore_stream("cam", {**snapshot, "version": 999})
    refused.close()


# ----------------------------------------------------------------------
# Service lifecycle hardening (the satellite behaviours)
# ----------------------------------------------------------------------
def test_unknown_stream_raises_keyerror_naming_it(tiny_jackson):
    service = QueryService()
    query = QueryBuilder("cars").count("car").at_least(1).build()
    with pytest.raises(KeyError, match="ghost"):
        service.feed("ghost", _frames(tiny_jackson.test)[:5])
    with pytest.raises(KeyError, match="ghost"):
        service.register("ghost", query)
    with pytest.raises(KeyError, match="ghost"):
        service.checkpoint("ghost")
    assert service.close_stream("ghost") == {}
    service.close()


def test_closed_stream_refuses_feed_and_register(cars_workload, tiny_jackson):
    queries, cascades = cars_workload
    service = QueryService()
    service.attach_stream(
        "cam",
        ReferenceDetector(class_names=tiny_jackson.class_names, seed=DETECTOR_SEED),
        StreamConfig(chunk_size=10),
    )
    service.register("cam", queries[0], cascades[0])
    frames = _frames(tiny_jackson.test)
    service.feed("cam", frames[:10])
    service.stop(drain=True)
    with pytest.raises(AnalysisError, match="'cam'"):
        service.feed("cam", frames[10:20])
    late = QueryBuilder("late").count("car").at_least(1).build()
    with pytest.raises(AnalysisError, match="'cam'"):
        service.register("cam", late)
    service.close()


def test_stop_without_drain_cannot_deadlock_and_is_idempotent(
    cars_workload, tiny_jackson
):
    queries, cascades = cars_workload
    service = QueryService()
    service.attach_stream(
        "cam",
        ReferenceDetector(class_names=tiny_jackson.class_names, seed=DETECTOR_SEED),
        StreamConfig(chunk_size=5, queue_chunks=8),
    )
    service.register("cam", queries[0], cascades[0])
    service.start()
    service.feed("cam", _frames(tiny_jackson.test))
    service.stop(drain=False)  # must return within one poll interval
    service.stop(drain=False)  # double stop is a no-op
    results = service.close()
    assert service.close() == {}  # double close is a no-op
    assert len(results) == 1
