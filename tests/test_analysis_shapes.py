"""Shape/dtype abstract interpreter (NN0xx): golden findings + clean networks.

One golden test per diagnostic code, the engine-integration paths
(``NeuralBranchFilter`` construction and ``lint_plan``), and an "all clean"
sweep pinning that every network the repo actually builds lints without
findings at its declared inference dtype.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    AnalysisError,
    describe_layer,
    input_spec,
    lint_network,
    lint_plan,
)
from repro.analysis.shapes import TensorSpec
from repro.filters.neural import NeuralBranchFilter, build_branch_network
from repro.nn.layers import (
    Conv2D,
    Dense,
    Flatten,
    GlobalAveragePooling2D,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Sigmoid,
)
from repro.nn.network import MultiHeadNetwork, Sequential
from repro.query.planner import CascadeStep, FilterCascade


# ----------------------------------------------------------------------
# Golden findings, one per code
# ----------------------------------------------------------------------
def test_nn001_names_producing_and_consuming_layers():
    net = Sequential([GlobalAveragePooling2D(), Dense(16, 2, seed=0)])
    report = lint_network(net, input_spec(8, channels=4))
    assert report.codes == ("NN001",)
    message = report.diagnostics[0].message
    # The consuming layer and the producing layer are both quoted.
    assert "Dense(16->2)" in message
    assert "GlobalAveragePooling2D" in message
    assert "(N, 4)" in message


def test_nn001_expected_output_mismatch():
    net = Sequential([GlobalAveragePooling2D(), Dense(3, 2, seed=0)])
    report = lint_network(
        net, input_spec(8, channels=3), expected_outputs={"output": ("N", 5)}
    )
    assert report.codes == ("NN001",)
    assert "(N, 5)" in report.diagnostics[0].message


def test_nn002_collapsed_convolution_and_unreachable_tail():
    # 4x4 input, 7x7 kernel, no padding: output extent (4 - 7) // 1 + 1 < 0.
    net = Sequential([Conv2D(3, 8, kernel_size=7, seed=0), ReLU()])
    report = lint_network(net, input_spec(4))
    assert report.codes == ("NN002", "NN004")
    assert "collapses" in report.diagnostics[0].message
    assert "unreachable" in report.diagnostics[1].message
    assert "ReLU" in report.diagnostics[1].message


def test_nn002_indivisible_pool():
    net = Sequential([MaxPool2D(4)])
    report = lint_network(net, input_spec(6))
    assert report.codes == ("NN002",)
    assert "not divisible by pool size 4" in report.diagnostics[0].message


def test_nn003_integer_activations_promote_in_eval():
    net = Sequential([Conv2D(3, 4, kernel_size=3, padding=1, seed=0)])
    report = lint_network(net, input_spec(8, dtype=np.int32))
    assert report.codes == ("NN003",)
    assert "int32" in report.diagnostics[0].message
    assert "float64" in report.diagnostics[0].message


def test_nn003_train_mode_breaks_float32():
    net = Sequential([Conv2D(3, 4, kernel_size=3, padding=1, seed=0)])
    assert lint_network(net, input_spec(8, dtype=np.float32)).ok
    report = lint_network(net, input_spec(8, dtype=np.float32), mode="train")
    assert report.codes == ("NN003",)


def test_nn004_dead_relu_after_sigmoid():
    net = Sequential([Sigmoid(), ReLU()])
    report = lint_network(
        net, TensorSpec(shape=("N", 4), dtype=np.dtype(np.float64))
    )
    assert report.codes == ("NN004",)
    assert "dead" in report.diagnostics[0].message


def test_nn004_flatten_of_flat_tensor():
    net = Sequential([GlobalAveragePooling2D(), Flatten()])
    report = lint_network(net, input_spec(8))
    assert report.codes == ("NN004",)
    assert "no-op" in report.diagnostics[0].message


def test_nn005_opaque_layer_is_informational():
    class Mystery:
        def forward(self, inputs):
            return inputs

    net = Sequential([Mystery(), GlobalAveragePooling2D()])
    report = lint_network(net, input_spec(8))
    assert report.codes == ("NN005",)
    assert report.ok  # info-severity: analysis continues, nothing raises
    assert "Mystery" in report.diagnostics[0].message


def test_custom_layer_declared_output_dtype_drift():
    class Quantize:
        output_dtype = np.int8

        def forward(self, inputs):
            return inputs.astype(np.int8)

    net = Sequential([Quantize()])
    report = lint_network(net, input_spec(8, dtype=np.float32))
    assert report.codes == ("NN003",)


# ----------------------------------------------------------------------
# Interpreter mechanics
# ----------------------------------------------------------------------
def test_symbolic_batch_dim_survives_to_the_heads():
    net = build_branch_network(2, image_size=56, grid_size=14)
    report = lint_network(
        net,
        input_spec(56, dtype=np.float32),
        expected_outputs={"counts": ("N", 2), "grid": ("N", 2, 14, 14)},
    )
    assert report.ok and not report.diagnostics


def test_strict_raises_analysis_error_with_layer_trace():
    net = Sequential([GlobalAveragePooling2D(), Dense(16, 2, seed=0)])
    with pytest.raises(AnalysisError) as excinfo:
        lint_network(net, input_spec(8, channels=4), strict=True)
    assert "NN001" in str(excinfo.value)
    assert "Dense(16->2)" in str(excinfo.value)


def test_trunk_failure_marks_heads_unreachable():
    trunk = Sequential([MaxPool2D(5)])
    heads = {
        "counts": Sequential([GlobalAveragePooling2D()]),
        "grid": Sequential([Sigmoid()]),
    }
    report = lint_network(
        MultiHeadNetwork(trunk=trunk, heads=heads), input_spec(8)
    )
    assert "NN002" in report.codes
    assert any(
        "heads counts, grid are unreachable" in d.message for d in report.diagnostics
    )


def test_describe_layer_tokens():
    assert (
        describe_layer(Conv2D(3, 8, kernel_size=3, padding=1, seed=0))
        == "Conv2D(3->8, k=3, s=1, p=1)"
    )
    assert describe_layer(Dense(16, 2, seed=0)) == "Dense(16->2)"
    assert describe_layer(MaxPool2D(2)) == "MaxPool2D(p=2)"
    assert describe_layer(LeakyReLU(0.1)) == "LeakyReLU(0.1)"


# ----------------------------------------------------------------------
# Engine integration: filter construction and plan()-time rejection
# ----------------------------------------------------------------------
def _branch_filter(network, class_names=("car", "person"), **kwargs):
    return NeuralBranchFilter(
        network,
        class_names=class_names,
        image_size=56,
        grid_size=14,
        frame_width=224,
        frame_height=224,
        **kwargs,
    )


def test_filter_construction_rejects_head_mismatch():
    # Three classes demanded of a two-class network: both heads misshapen.
    net = build_branch_network(2, image_size=56, grid_size=14)
    with pytest.raises(AnalysisError) as excinfo:
        _branch_filter(net, class_names=("car", "person", "bus"))
    assert "NN001" in str(excinfo.value)
    assert "counts output" in str(excinfo.value)


def test_filter_construction_lint_false_escape_hatch():
    net = build_branch_network(2, image_size=56, grid_size=14)
    broken = _branch_filter(net, class_names=("car", "person", "bus"), lint=False)
    assert broken.network is net


def test_lint_plan_reports_malformed_network_with_filter_name():
    net = build_branch_network(2, image_size=56, grid_size=14)
    broken = _branch_filter(net, class_names=("car", "person", "bus"), lint=False)
    cascade = FilterCascade(
        steps=[
            CascadeStep(
                name="neural", frame_filter=broken, check=lambda prediction: True
            )
        ]
    )
    report = lint_plan(cascade)
    assert "NN001" in report.codes
    assert any(
        d.message.startswith("filter 'od_neural_branch':") for d in report.diagnostics
    )
    with pytest.raises(AnalysisError):
        lint_plan(cascade, strict=True)


def test_lint_plan_ignores_non_neural_filters(trained_od_filter):
    cascade = FilterCascade(
        steps=[
            CascadeStep(
                name="od", frame_filter=trained_od_filter, check=lambda p: True
            )
        ]
    )
    assert not [c for c in lint_plan(cascade).codes if c.startswith("NN")]


# ----------------------------------------------------------------------
# Golden "all clean": every network the repo builds lints clean
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "num_classes, image_size, grid_size",
    [(2, 56, 14), (3, 56, 14), (2, 8, 4), (2, 28, 7), (1, 16, 4)],
)
def test_build_branch_network_configs_lint_clean(num_classes, image_size, grid_size):
    net = build_branch_network(num_classes, image_size=image_size, grid_size=grid_size)
    for dtype in (np.float32, np.float64):
        report = lint_network(
            net,
            input_spec(image_size, dtype=dtype),
            expected_outputs={
                "counts": ("N", num_classes),
                "grid": ("N", num_classes, grid_size, grid_size),
            },
        )
        assert report.ok and not report.diagnostics, report.render()


def test_neural_branch_filter_construction_is_clean_by_default():
    net = build_branch_network(2, image_size=8, grid_size=4)
    built = NeuralBranchFilter(
        net,
        class_names=("car", "person"),
        image_size=8,
        grid_size=4,
        frame_width=64,
        frame_height=64,
    )
    assert built.name == "od_neural_branch"
