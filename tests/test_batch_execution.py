"""Parity tests: batched filter / executor paths vs the sequential paths.

The batched execution engine must be a pure optimisation: identical matched
frames, identical work counters and an identical simulated cost breakdown
(call counts exactly; milliseconds up to float rounding, because a batched
charge accumulates ``n * latency`` in one addition where the sequential path
adds ``latency`` ``n`` times).  Selectivity-aware ordering likewise must not
change which frames survive a conjunctive cascade.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.detection import ReferenceDetector
from repro.filters.base import FilterPrediction, FrameFilter
from repro.query import (
    PlannerConfig,
    QueryBuilder,
    QueryPlanner,
    StreamingQueryExecutor,
    measure_cascade_selectivity,
    order_cascade_by_selectivity,
)
from repro.query.planner import CascadeStep, FilterCascade
from repro.spatial.grid import Grid
from repro.video.stream import Frame


@pytest.fixture(scope="module")
def shared_filter_cascade(trained_od_filter, trained_od_cof):
    """A cascade whose CCF and CLF steps share one filter (plus OD-COF)."""
    filters = {"od": trained_od_filter, "od_cof": trained_od_cof}
    query = (
        QueryBuilder("mixed")
        .count("car").at_least(1)
        .count().at_least(1)
        .spatial("car").left_of("person")
        .build()
    )
    # analyze=False: this fixture exercises the raw three-step plan; the
    # analyzer would eliminate the tolerance-swallowed COUNT steps (PL002).
    cascade = QueryPlanner(filters, PlannerConfig(count_tolerance=1, location_dilation=2)).plan(query, analyze=False)
    assert len(cascade) == 3
    assert len(cascade.filters) == 2  # CCF and CLF share the OD filter
    return query, cascade


def _execute(query, cascade, stream, indices, class_names, batch_size=None):
    detector = ReferenceDetector(class_names=class_names, seed=77)
    executor = StreamingQueryExecutor(detector)
    return executor.execute(
        query, stream, cascade, frame_indices=indices, batch_size=batch_size
    )


def _assert_parity(sequential, batched):
    assert batched.matched_frames == sequential.matched_frames
    assert batched.stats.frames_scanned == sequential.stats.frames_scanned
    assert batched.stats.frames_passed_filters == sequential.stats.frames_passed_filters
    assert batched.stats.detector_invocations == sequential.stats.detector_invocations
    assert batched.stats.filter_invocations == sequential.stats.filter_invocations
    sequential_cost = sequential.stats.simulated_cost
    batched_cost = batched.stats.simulated_cost
    assert batched_cost.per_component_calls == sequential_cost.per_component_calls
    assert set(batched_cost.per_component_ms) == set(sequential_cost.per_component_ms)
    for component, milliseconds in sequential_cost.per_component_ms.items():
        # One batched charge of n * latency vs n sequential additions of
        # latency: equal up to float rounding.
        assert batched_cost.per_component_ms[component] == pytest.approx(
            milliseconds, rel=1e-12
        )


@pytest.mark.parametrize("chunk_size", [1, 7, None])
def test_batched_execution_parity_across_chunk_sizes(
    shared_filter_cascade, tiny_jackson, chunk_size
):
    query, cascade = shared_filter_cascade
    indices = list(range(0, 50, 2))
    if chunk_size is None:
        chunk_size = len(indices)  # one chunk spanning the whole scan
    sequential = _execute(query, cascade, tiny_jackson.test, indices, tiny_jackson.class_names)
    batched = _execute(
        query, cascade, tiny_jackson.test, indices, tiny_jackson.class_names,
        batch_size=chunk_size,
    )
    assert sequential.stats.batch_size is None
    assert batched.stats.batch_size == chunk_size
    _assert_parity(sequential, batched)


def test_batched_execution_parity_with_empty_cascade(tiny_jackson):
    query = QueryBuilder("q").count("car").at_least(1).build()
    sequential = _execute(query, FilterCascade(), tiny_jackson.test, range(10), tiny_jackson.class_names)
    batched = _execute(
        query, FilterCascade(), tiny_jackson.test, range(10), tiny_jackson.class_names,
        batch_size=4,
    )
    assert batched.stats.detector_invocations == 10
    _assert_parity(sequential, batched)


def test_batch_size_validation(tiny_jackson):
    query = QueryBuilder("q").count("car").at_least(1).build()
    detector = ReferenceDetector(class_names=tiny_jackson.class_names, seed=1)
    with pytest.raises(ValueError):
        StreamingQueryExecutor(detector).execute(
            query, tiny_jackson.test, batch_size=0
        )


def test_linear_filter_predict_batch_matches_predict(
    trained_od_filter, trained_ic_filter, trained_od_cof, tiny_jackson
):
    frames = [tiny_jackson.test.frame(index) for index in range(12)]
    for frame_filter in (trained_od_filter, trained_ic_filter, trained_od_cof):
        sequential = [frame_filter.predict(frame) for frame in frames]
        batched = frame_filter.predict_batch(frames)
        assert batched.filter_name == frame_filter.name
        assert len(batched) == len(frames)
        for seq, bat in zip(sequential, batched):
            assert bat.frame_index == seq.frame_index
            assert bat.class_counts == seq.class_counts
            for name in seq.class_scores:
                assert bat.class_scores[name] == pytest.approx(
                    seq.class_scores[name], abs=1e-6
                )
            assert set(bat.location_scores) == set(seq.location_scores)
            for name in seq.location_scores:
                np.testing.assert_allclose(
                    bat.location_scores[name], seq.location_scores[name], atol=1e-6
                )
                # Thresholded occupancy decisions are what the cascade sees.
                assert np.array_equal(
                    bat.location_scores[name] >= bat.threshold,
                    seq.location_scores[name] >= seq.threshold,
                )


def test_predict_batch_empty_and_charging(trained_od_filter, tiny_jackson):
    from repro.cost import SimulatedClock

    empty = trained_od_filter.predict_batch([])
    assert len(empty) == 0 and empty.frame_indices == ()

    clock = SimulatedClock()
    trained_od_filter.clock = clock
    try:
        frames = [tiny_jackson.test.frame(index) for index in range(5)]
        trained_od_filter.predict_batch(frames)
    finally:
        trained_od_filter.clock = None
    assert clock.breakdown.per_component_calls[trained_od_filter.name] == 5
    assert clock.breakdown.per_component_ms[trained_od_filter.name] == pytest.approx(
        5 * trained_od_filter.latency_ms
    )


def test_backbone_extract_batch_matches_extract(trained_od_filter, tiny_jackson):
    frames = [tiny_jackson.test.frame(index) for index in range(8)]
    backbone = trained_od_filter.backbone
    reference = np.stack([backbone.extract(frame.image) for frame in frames])
    batched = backbone.extract_batch(np.stack([frame.image for frame in frames]))
    assert batched.shape == reference.shape
    np.testing.assert_allclose(batched, reference, atol=1e-6)


def test_extract_batch_large_pooling_blocks_no_overflow():
    """Regression: int32 block sums of gray^2 overflowed for blocks >= 61,
    silently zeroing intensity_std in the batched path."""
    from repro.detection.backbone import BackboneConfig, FeatureBackbone

    backbone = FeatureBackbone(BackboneConfig(grid_size=8, use_background_model=False))
    image = np.random.default_rng(0).integers(
        0, 256, size=(512, 512, 3), dtype=np.uint8
    )
    single = backbone.extract(image)
    batched = backbone.extract_batch(image[None])[0]
    assert single[..., 3].max() > 0  # intensity_std is non-trivial
    np.testing.assert_allclose(batched, single, atol=1e-6)


# ----------------------------------------------------------------------
# Selectivity-aware cascade ordering
# ----------------------------------------------------------------------
class _StubFilter(FrameFilter):
    """Deterministic filter stub for ordering tests (no pixels involved)."""

    def __init__(self, name: str, latency_ms: float) -> None:
        super().__init__()
        self.name = name
        self.latency_ms = latency_ms
        self._grid = Grid(rows=2, cols=2, frame_width=8, frame_height=8)

    def predict(self, frame: Frame) -> FilterPrediction:
        self._charge()
        return FilterPrediction(
            frame_index=frame.index,
            filter_name=self.name,
            grid=self._grid,
            class_counts={},
            class_scores={},
            location_scores={},
            threshold=0.5,
            latency_ms=self.latency_ms,
        )


class _StubStream:
    def __init__(self, num_frames: int) -> None:
        self._num_frames = num_frames
        self._image = np.zeros((8, 8, 3), dtype=np.uint8)

    def __len__(self) -> int:
        return self._num_frames

    def frame(self, index: int) -> Frame:
        return Frame(index=index, image=self._image, ground_truth=None)


def _stub_step(name, latency_ms, passes_when):
    return CascadeStep(
        name=name,
        frame_filter=_StubFilter(name, latency_ms),
        check=lambda prediction, rule=passes_when: rule(prediction.frame_index),
    )


def test_order_cascade_by_selectivity_prefers_cheap_rejectors():
    cascade = FilterCascade(
        steps=[
            _stub_step("pass-all", 1.0, lambda index: True),
            _stub_step("cheap-selective", 1.0, lambda index: index % 5 == 0),
            _stub_step("pricey-selective", 10.0, lambda index: index % 5 == 0),
            _stub_step("mild", 1.0, lambda index: index % 2 == 0),
        ]
    )
    ordered = order_cascade_by_selectivity(cascade, _StubStream(20), sample_size=20)
    assert [step.name for step in ordered.steps] == [
        "cheap-selective",  # 1.0 ms / 0.8 rejection = 1.25
        "mild",             # 1.0 / 0.5 = 2.0
        "pricey-selective", # 10.0 / 0.8 = 12.5
        "pass-all",         # rejects nothing -> inf, last
    ]
    by_name = {step.name: step for step in ordered.steps}
    assert by_name["cheap-selective"].measured_pass_rate == pytest.approx(0.2)
    assert by_name["mild"].measured_cost_ms == 1.0
    assert math.isinf(by_name["pass-all"].cost_per_rejection)
    # Measurement must not charge the simulated clock.
    for step in cascade.steps:
        assert step.frame_filter.clock is None


def test_measure_cascade_selectivity_on_planned_cascade(
    shared_filter_cascade, tiny_jackson
):
    _, cascade = shared_filter_cascade
    measured = measure_cascade_selectivity(cascade, tiny_jackson.test, sample_size=16)
    assert [step.name for step in measured.steps] == [step.name for step in cascade.steps]
    for step in measured.steps:
        assert 0.0 <= step.measured_pass_rate <= 1.0
        assert step.measured_cost_ms == step.frame_filter.latency_ms


def test_selectivity_ordering_preserves_query_results(
    shared_filter_cascade, tiny_jackson
):
    query, cascade = shared_filter_cascade
    ordered = order_cascade_by_selectivity(cascade, tiny_jackson.test, sample_size=16)
    assert sorted(step.name for step in ordered.steps) == sorted(
        step.name for step in cascade.steps
    )
    indices = list(range(0, 50, 2))
    static = _execute(query, cascade, tiny_jackson.test, indices, tiny_jackson.class_names)
    reordered = _execute(query, ordered, tiny_jackson.test, indices, tiny_jackson.class_names)
    # Conjunctive steps: ordering can change filter work, never the answers.
    assert reordered.matched_frames == static.matched_frames
    assert reordered.stats.detector_invocations == static.stats.detector_invocations
    # And batched execution of the reordered cascade agrees with itself.
    batched = _execute(
        query, ordered, tiny_jackson.test, indices, tiny_jackson.class_names, batch_size=8
    )
    _assert_parity(reordered, batched)


def test_planner_selectivity_ordering_config(
    trained_od_filter, trained_od_cof, tiny_jackson
):
    filters = {"od": trained_od_filter, "od_cof": trained_od_cof}
    query = (
        QueryBuilder("q").count("car").equals(1).count().at_least(1).build()
    )
    config = PlannerConfig(cascade_ordering="selectivity", ordering_sample_size=12)
    planner = QueryPlanner(filters, config)
    with pytest.raises(ValueError):
        planner.plan(query)  # needs a sample stream to measure on
    # analyze=False keeps the dead total-count step so the ordering has two
    # measured steps to rank.
    cascade = planner.plan(query, sample_stream=tiny_jackson.test, analyze=False)
    ranks = [step.cost_per_rejection for step in cascade.steps]
    assert ranks == sorted(ranks)
    for step in cascade.steps:
        assert step.measured_pass_rate is not None
    with pytest.raises(ValueError):
        PlannerConfig(cascade_ordering="alphabetical")
    with pytest.raises(ValueError):
        PlannerConfig(ordering_sample_size=0)
