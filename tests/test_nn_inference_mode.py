"""Tests for the eval-mode inference fast path of the nn framework.

``set_training(False)`` must (a) allocate no backward caches in any layer,
(b) make ``backward`` fail with a clear eval-mode error, (c) preserve a
float32 input dtype end to end, and (d) produce outputs that agree with the
float64 training-mode forward to float32 precision.  ``Conv2D`` must
additionally reuse its preallocated im2col scratch across eval calls.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.filters.neural import NeuralBranchFilter, build_branch_network
from repro.nn.layers import (
    Conv2D,
    Dense,
    Flatten,
    GlobalAveragePooling2D,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Sigmoid,
)
from repro.nn.network import MultiHeadNetwork, Sequential


def _all_layers() -> list:
    return [
        ReLU(),
        LeakyReLU(0.1),
        Sigmoid(),
        Flatten(),
        Dense(12, 5, seed=0),
        Conv2D(3, 4, kernel_size=3, padding=1, seed=0),
        MaxPool2D(2),
        GlobalAveragePooling2D(),
    ]


def _input_for(layer, rng) -> np.ndarray:
    if isinstance(layer, Dense):
        return rng.normal(size=(2, 12))
    if isinstance(layer, (Conv2D, MaxPool2D, GlobalAveragePooling2D, Flatten)):
        return rng.normal(size=(2, 3, 8, 8))
    return rng.normal(size=(2, 3, 8, 8))


_CACHE_ATTRS = {
    ReLU: ("_mask",),
    LeakyReLU: ("_mask",),
    Sigmoid: ("_output",),
    Flatten: ("_input_shape",),
    Dense: ("_inputs",),
    Conv2D: ("_cols", "_input_shape", "_out_hw"),
    MaxPool2D: ("_argmax", "_inputs_shape"),
    GlobalAveragePooling2D: ("_input_shape",),
}


def test_eval_mode_layers_allocate_no_caches(rng):
    for layer in _all_layers():
        layer.training = False
        layer.forward(_input_for(layer, rng))
        for attr in _CACHE_ATTRS[type(layer)]:
            assert getattr(layer, attr) is None, f"{type(layer).__name__}.{attr}"


def test_eval_mode_backward_raises_clear_error(rng):
    for layer in _all_layers():
        layer.training = False
        output = layer.forward(_input_for(layer, rng))
        with pytest.raises(RuntimeError, match="eval mode"):
            layer.backward(np.zeros_like(np.asarray(output)))


def test_training_mode_still_caches_and_backprops(rng):
    layer = ReLU()
    inputs = rng.normal(size=(2, 5))
    layer.forward(inputs)
    assert layer._mask is not None
    grads = layer.backward(np.ones((2, 5)))
    assert grads.shape == (2, 5)


def test_eval_forward_matches_training_forward(rng):
    for layer in _all_layers():
        inputs = _input_for(layer, rng)
        layer.training = True
        expected = layer.forward(inputs)
        layer.training = False
        observed = layer.forward(inputs)
        assert np.allclose(np.asarray(expected), np.asarray(observed))


def test_sigmoid_preserves_float32():
    layer = Sigmoid()
    out32 = layer.forward(np.array([[-3.0, 0.0, 3.0]], dtype=np.float32))
    assert out32.dtype == np.float32
    out64 = layer.forward(np.array([[-3.0, 0.0, 3.0]], dtype=np.float64))
    assert out64.dtype == np.float64
    # Integer inputs keep promoting to float64 as before.
    assert layer.forward(np.array([[0, 1]], dtype=np.int64)).dtype == np.float64
    # The stable branches agree with the naive formula.
    x = np.linspace(-30, 30, 61)
    assert np.allclose(layer.forward(x), 1.0 / (1.0 + np.exp(-x)))


def test_eval_mode_preserves_float32_end_to_end(rng):
    network = Sequential(
        [
            Conv2D(3, 4, kernel_size=3, padding=1, seed=1),
            LeakyReLU(0.1),
            MaxPool2D(2),
            GlobalAveragePooling2D(),
            Dense(4, 2, seed=2),
            Sigmoid(),
        ]
    )
    network.set_training(False)
    inputs = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
    output = network.forward(inputs)
    assert output.dtype == np.float32
    network.set_training(True)
    reference = network.forward(inputs.astype(np.float64))
    assert np.allclose(reference, output.astype(np.float64), atol=1e-5)


def test_eval_mode_integer_inputs_promote_instead_of_truncating(rng):
    """Integer activations must not drag float weights down to int dtypes."""
    dense = Dense(3, 2, seed=0)
    inputs = np.array([[1, 2, 3]], dtype=np.int64)
    dense.training = True
    expected = dense.forward(inputs.astype(np.float64))
    dense.training = False
    observed = dense.forward(inputs)
    assert np.issubdtype(observed.dtype, np.floating)
    assert np.allclose(expected, observed)

    conv = Conv2D(3, 4, kernel_size=3, padding=1, seed=0)
    images = rng.integers(0, 255, size=(1, 3, 8, 8)).astype(np.uint8)
    conv.training = True
    expected = conv.forward(images.astype(np.float64))
    conv.training = False
    observed = conv.forward(images)
    assert np.issubdtype(observed.dtype, np.floating)
    assert np.allclose(expected, observed)


def test_conv2d_reuses_im2col_buffer_across_eval_calls(rng):
    conv = Conv2D(3, 4, kernel_size=3, padding=1, seed=0)
    conv.training = False
    inputs = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
    conv.forward(inputs)
    gather = conv._infer_buffers["gather"]
    flat = conv._infer_buffers["flat"]
    conv.forward(inputs)
    assert conv._infer_buffers["gather"] is gather
    assert conv._infer_buffers["flat"] is flat
    # A different geometry reallocates instead of corrupting the result.
    bigger = rng.normal(size=(1, 3, 16, 16)).astype(np.float32)
    out = conv.forward(bigger)
    assert out.shape == (1, 4, 16, 16)
    assert conv._infer_buffers["flat"] is not flat


def test_multi_head_network_eval_mode(rng):
    network = build_branch_network(num_classes=2, image_size=8, grid_size=4, seed=3)
    inputs = rng.normal(size=(2, 3, 8, 8))
    network.set_training(True)
    trained = network.forward(inputs)
    network.set_training(False)
    evaled = network.forward(inputs)
    assert network._trunk_output is None
    for name in trained:
        assert np.allclose(trained[name], evaled[name], atol=1e-6)
    with pytest.raises(RuntimeError, match="eval mode"):
        network.backward({"counts": np.zeros_like(evaled["counts"])})


def test_neural_filter_inference_parity(tiny_jackson):
    network = build_branch_network(num_classes=2, image_size=56, grid_size=14, seed=4)
    frame_filter = NeuralBranchFilter(
        network,
        tiny_jackson.class_names,
        image_size=56,
        grid_size=14,
        frame_width=tiny_jackson.profile.frame_width,
        frame_height=tiny_jackson.profile.frame_height,
    )
    frames = [tiny_jackson.test.frame(index) for index in range(6)]
    network.set_training(True)
    trained = frame_filter.predict_batch(frames)
    network.set_training(False)
    assert frame_filter._activation_dtype == np.float32
    inferred = frame_filter.predict_batch(frames)
    for a, b in zip(trained, inferred):
        assert a.class_counts == b.class_counts
        for name in a.class_scores:
            assert a.class_scores[name] == pytest.approx(b.class_scores[name], abs=1e-4)
        for name in a.location_scores:
            assert np.allclose(
                np.asarray(a.location_scores[name], dtype=np.float64),
                np.asarray(b.location_scores[name], dtype=np.float64),
                atol=1e-4,
            )
