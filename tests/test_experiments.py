"""Smoke tests for the experiment harness at a very small scale.

These verify that every table/figure runner produces rows of the documented
shape; the benchmark harness runs them at the larger (paper-shaped) scale.
"""

from __future__ import annotations

import pytest

from repro.experiments import constraint_check, fig7, fig11, fig15, table2, table3, table4
from repro.experiments.context import ExperimentConfig, get_context

TINY = ExperimentConfig(
    train_size=80,
    val_size=20,
    test_size=60,
    max_train_frames=70,
    test_stride=4,
    seed=5,
)


@pytest.fixture(scope="module")
def jackson_context():
    return get_context("jackson", TINY)


def test_context_caches_by_config(jackson_context):
    assert get_context("jackson", TINY) is jackson_context
    assert jackson_context.dataset.name == "jackson"
    assert set(jackson_context.filters) == {"ic", "od", "od_cof"}
    with pytest.raises(KeyError):
        get_context("not-a-dataset", TINY)


def test_table2_rows():
    rows = table2.run(TINY)
    assert {row["dataset"] for row in rows} == {"coral", "jackson", "detrac"}
    assert "paper_obj_per_frame_mean" in rows[0]
    assert table2.format_rows(rows)


def test_fig7_and_fig11_rows_single_dataset():
    rows7 = fig7.run(TINY, dataset_names=("jackson",))
    assert len(rows7) == 3
    assert all(0 <= row["exact"] <= 1 for row in rows7)
    rows11 = fig11.run(TINY, dataset_names=("jackson",))
    assert len(rows11) == 4  # 2 filters x 2 classes
    assert fig7.format_rows(rows7) and fig11.format_rows(rows11)


def test_fig15_rows_single_dataset():
    rows = fig15.run(TINY, dataset_names=("jackson",))
    assert len(rows) == 4
    for row in rows:
        assert row["f1"] <= row["f1_manhattan_2"] + 1e-9
    assert fig15.format_rows(rows)


def test_table3_subset():
    rows = table3.run(TINY, query_names=("q3", "q4"))
    assert [row["query"] for row in rows] == ["q3", "q4"]
    for row in rows:
        assert row["filtered_time_s"] <= row["brute_force_time_s"] + 1e-9
        assert 0 <= row["accuracy"] <= 1
    assert table3.format_rows(rows)


def test_table4_subset():
    rows = table4.run(TINY, sample_size=20, repetitions=3, query_names=("a1",))
    assert rows[0]["query"] == "a1"
    assert rows[0]["per_frame_ms"] > 200
    assert table4.format_rows(rows)


def test_constraint_check_runs():
    result = constraint_check.run(TINY, dataset_name="jackson", subject_class="car", reference_class="person")
    assert 0.0 <= result["accuracy"] <= 1.0
    assert result["frames"] > 0
