"""Gradient checks and shape tests for the numpy neural-network layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Conv2D,
    Dense,
    Flatten,
    GlobalAveragePooling2D,
    LeakyReLU,
    MaxPool2D,
    MSELoss,
    ReLU,
    Sequential,
    Sigmoid,
    gradient_check,
)


def _input_gradient_error(layer, shape, seed=0):
    """Finite-difference check of dL/d(input) through a single layer."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape)
    target_shape = layer.forward(x.copy()).shape
    target = rng.normal(size=target_shape)
    loss = MSELoss()

    def forward(inputs):
        return loss.forward(layer.forward(inputs), target)

    def grad(inputs):
        loss.forward(layer.forward(inputs), target)
        layer.zero_grad()
        return layer.backward(loss.backward())

    return gradient_check(forward, grad, x, num_checks=12, seed=seed)


@pytest.mark.parametrize(
    "layer, shape",
    [
        (ReLU(), (2, 3, 4, 4)),
        (LeakyReLU(0.1), (2, 3, 4, 4)),
        (Sigmoid(), (2, 5)),
        (Flatten(), (2, 3, 4, 4)),
        (Dense(12, 7, seed=1), (3, 12)),
        (Conv2D(3, 5, kernel_size=3, padding=1, seed=2), (2, 3, 6, 6)),
        (Conv2D(2, 4, kernel_size=3, stride=2, padding=1, seed=3), (2, 2, 8, 8)),
        (Conv2D(2, 3, kernel_size=1, seed=4), (2, 2, 5, 5)),
        (MaxPool2D(2), (2, 3, 8, 8)),
        (GlobalAveragePooling2D(), (2, 4, 6, 6)),
    ],
)
def test_layer_input_gradients(layer, shape):
    assert _input_gradient_error(layer, shape) < 1e-5


def test_conv_parameter_gradients():
    rng = np.random.default_rng(0)
    layer = Conv2D(2, 3, kernel_size=3, padding=1, seed=5)
    x = rng.normal(size=(2, 2, 5, 5))
    target = rng.normal(size=(2, 3, 5, 5))
    loss = MSELoss()

    def forward(weights):
        layer.weight[...] = weights
        return loss.forward(layer.forward(x), target)

    def grad(weights):
        layer.weight[...] = weights
        loss.forward(layer.forward(x), target)
        layer.zero_grad()
        layer.backward(loss.backward())
        return layer.grad_weight

    error = gradient_check(forward, grad, layer.weight.copy(), num_checks=15, seed=1)
    assert error < 1e-5


def test_dense_shapes_and_validation():
    dense = Dense(4, 2, seed=0)
    out = dense.forward(np.zeros((3, 4)))
    assert out.shape == (3, 2)
    with pytest.raises(ValueError):
        dense.forward(np.zeros((3, 4, 1)))
    with pytest.raises(ValueError):
        Dense(0, 2)


def test_conv_output_shapes():
    conv = Conv2D(3, 8, kernel_size=3, stride=1, padding=1)
    assert conv.forward(np.zeros((1, 3, 16, 16))).shape == (1, 8, 16, 16)
    strided = Conv2D(3, 8, kernel_size=3, stride=2, padding=1)
    assert strided.forward(np.zeros((1, 3, 16, 16))).shape == (1, 8, 8, 8)
    with pytest.raises(ValueError):
        conv.forward(np.zeros((1, 4, 16, 16)))
    with pytest.raises(ValueError):
        Conv2D(3, 8, kernel_size=3, padding=-1)


def test_maxpool_requires_divisible_input():
    pool = MaxPool2D(3)
    with pytest.raises(ValueError):
        pool.forward(np.zeros((1, 1, 8, 8)))
    out = pool.forward(np.arange(81, dtype=float).reshape(1, 1, 9, 9))
    assert out.shape == (1, 1, 3, 3)
    assert out[0, 0, 0, 0] == 20  # max of the first 3x3 block


def test_backward_before_forward_raises():
    for layer in (ReLU(), Sigmoid(), Flatten(), MaxPool2D(2), GlobalAveragePooling2D()):
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 1)))


def test_sequential_composition_gradients():
    network = Sequential(
        [
            Conv2D(1, 4, kernel_size=3, padding=1, seed=0),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(4 * 3 * 3, 2, seed=1),
        ]
    )
    rng = np.random.default_rng(3)
    x = rng.normal(size=(2, 1, 6, 6))
    target = rng.normal(size=(2, 2))
    loss = MSELoss()

    def forward(inputs):
        return loss.forward(network.forward(inputs), target)

    def grad(inputs):
        loss.forward(network.forward(inputs), target)
        network.zero_grad()
        return network.backward(loss.backward())

    assert gradient_check(forward, grad, x, num_checks=10) < 1e-5
    assert network.num_parameters() > 0
