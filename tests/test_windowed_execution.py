"""End-to-end tests for windowed query execution and aggregate execution.

The windowed engine must be a pure refinement of flat execution: one shared
scan over the frames covered by any window, per-window match sets whose union
equals the un-windowed answer on the same frames, and per-window results
identical to running the un-windowed query restricted to each window's frame
range (the reference detector is deterministic per frame, so restricted runs
are comparable).  ``execute_aggregate`` must reproduce ``AggregateMonitor``'s
estimates exactly for the same seed while batching the filter side.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.aggregates import (
    AggregateMonitor,
    AggregateQuerySpec,
    WindowBounds,
    query_indicator_control,
)
from repro.detection import ReferenceDetector
from repro.query import (
    PlannerConfig,
    QueryBuilder,
    QueryPlanner,
    StreamingQueryExecutor,
    parse_query,
)
from repro.query.ast import WindowSpec
from repro.query.planner import FilterCascade

WINDOWED_QUERY_TEXT = """
SELECT cameraID, frameID
FROM (PROCESS inputVideo PRODUCE cameraID, frameID, vehBox1 USING VehDetector)
WINDOW HOPPING (SIZE 20, ADVANCE BY 10)
WHERE COUNT(car) >= 1
"""


@pytest.fixture(scope="module")
def windowed_plan(trained_od_filter):
    """Parse -> plan round trip on a windowed query (WINDOW before WHERE)."""
    query = parse_query(WINDOWED_QUERY_TEXT, name="windowed_cars")
    cascade = QueryPlanner(
        {"od": trained_od_filter}, PlannerConfig(count_tolerance=1)
    ).plan(query)
    return query, cascade


def _executor(class_names, seed=77):
    return StreamingQueryExecutor(ReferenceDetector(class_names=class_names, seed=seed))


def test_windowed_parse_plan_execute_roundtrip(windowed_plan, tiny_jackson):
    query, cascade = windowed_plan
    assert query.window == WindowSpec(20, 10)
    result = _executor(tiny_jackson.class_names).execute(query, tiny_jackson.test, cascade)
    # 50 test frames, size 20 / advance 10: four full windows plus the
    # trailing partial [40, 50) materialised by the execution default.
    assert result.windows is not None
    assert [(w.bounds.start, w.bounds.stop) for w in result.windows] == [
        (0, 20), (10, 30), (20, 40), (30, 50), (40, 50),
    ]
    assert result.num_windows == 5
    assert result.stats.frames_scanned == len(tiny_jackson.test)
    union: set[int] = set()
    for window in result.windows:
        assert all(window.bounds.contains(index) for index in window.matched_frames)
        assert window.stats.frames_scanned == window.bounds.size
        assert window.stats.frames_passed_filters <= window.stats.frames_scanned
        assert window.num_matches == len(window.matched_frames)
        union.update(window.matched_frames)
    # The union of the per-window match sets is exactly the flat match set.
    assert union == set(result.matched_frames)


def test_windowed_matches_equal_unwindowed_on_same_frames(windowed_plan, tiny_jackson):
    query, cascade = windowed_plan
    windowed = _executor(tiny_jackson.class_names).execute(query, tiny_jackson.test, cascade)
    flat_query = dataclasses.replace(query, window=None)
    flat = _executor(tiny_jackson.class_names).execute(
        flat_query, tiny_jackson.test, cascade, frame_indices=range(len(tiny_jackson.test))
    )
    assert windowed.matched_frames == flat.matched_frames
    assert windowed.stats.filter_invocations == flat.stats.filter_invocations
    assert windowed.stats.detector_invocations == flat.stats.detector_invocations


def test_per_window_parity_with_restricted_unwindowed_runs(windowed_plan, tiny_jackson):
    query, cascade = windowed_plan
    windowed = _executor(tiny_jackson.class_names).execute(query, tiny_jackson.test, cascade)
    flat_query = dataclasses.replace(query, window=None)
    for window in windowed.windows:
        restricted = _executor(tiny_jackson.class_names).execute(
            flat_query, tiny_jackson.test, cascade, frame_indices=window.bounds.indices()
        )
        assert restricted.matched_frames == window.matched_frames
        assert restricted.stats.frames_scanned == window.stats.frames_scanned
        assert restricted.stats.frames_passed_filters == window.stats.frames_passed_filters


def test_sequential_vs_batched_parity_under_windows(windowed_plan, tiny_jackson):
    query, cascade = windowed_plan
    sequential = _executor(tiny_jackson.class_names).execute(query, tiny_jackson.test, cascade)
    batched = _executor(tiny_jackson.class_names).execute(
        query, tiny_jackson.test, cascade, batch_size=7
    )
    assert batched.matched_frames == sequential.matched_frames
    assert batched.windows == sequential.windows
    assert batched.stats.frames_passed_filters == sequential.stats.frames_passed_filters
    assert batched.stats.filter_invocations == sequential.stats.filter_invocations
    assert (
        batched.stats.simulated_cost.per_component_calls
        == sequential.stats.simulated_cost.per_component_calls
    )


def test_include_partial_windows_controls_tail_coverage(trained_od_filter, tiny_jackson):
    query = QueryBuilder("tumbling").count("car").at_least(1).window(20, 20).build()
    cascade = QueryPlanner({"od": trained_od_filter}).plan(query)
    covering = _executor(tiny_jackson.class_names).execute(query, tiny_jackson.test, cascade)
    assert [w.bounds for w in covering.windows] == [
        WindowBounds(0, 20), WindowBounds(20, 40), WindowBounds(40, 50),
    ]
    assert covering.stats.frames_scanned == 50
    # The paper's fixed-size semantics drop the 10-frame tail entirely.
    fixed = _executor(tiny_jackson.class_names).execute(
        query, tiny_jackson.test, cascade, include_partial_windows=False
    )
    assert [w.bounds for w in fixed.windows] == [WindowBounds(0, 20), WindowBounds(20, 40)]
    assert fixed.stats.frames_scanned == 40
    assert all(index < 40 for index in fixed.matched_frames)


# ----------------------------------------------------------------------
# Aggregate execution through the planner/executor API
# ----------------------------------------------------------------------
def test_execute_aggregate_reproduces_monitor_estimates(trained_od_filter, tiny_jackson):
    query = QueryBuilder("cars_present").count("car").at_least(1).build()
    spec = AggregateQuerySpec.from_query(query, [query_indicator_control(query)])
    cascade = QueryPlanner({"od": trained_od_filter}).plan(query)
    assert cascade.primary_filter is trained_od_filter

    executor = _executor(tiny_jackson.class_names, seed=13)
    result = executor.execute_aggregate(
        spec, tiny_jackson.test, cascade, sample_size=20, repetitions=3, seed=5
    )
    monitor = AggregateMonitor(
        detector=ReferenceDetector(class_names=tiny_jackson.class_names, seed=13),
        frame_filter=trained_od_filter,
        seed=5,
    )
    expected = monitor.estimate_repeated(spec, tiny_jackson.test, sample_size=20, repetitions=3)

    assert result.query_name == "cars_present"
    assert result.filter_name == trained_od_filter.name
    assert result.windows is None
    assert len(result.reports) == 3 and result.all_reports == result.reports
    for report, reference in zip(result.reports, expected):
        assert report.num_samples == reference.num_samples
        assert report.plain.mean == reference.plain.mean
        assert report.control_variate.mean == reference.control_variate.mean
        assert report.control_variate.variance == reference.control_variate.variance


def test_primary_filter_prefers_class_aware_filters(
    trained_od_filter, trained_od_cof, tiny_jackson
):
    """Selectivity reordering can move the count-only OD-COF step to the
    front; the control-variate source must stay the class-aware filter."""
    filters = {"od": trained_od_filter, "od_cof": trained_od_cof}
    query = QueryBuilder("mixed").count("car").at_least(1).count().at_least(1).build()
    # analyze=False: both steps are tolerance-swallowed (PL002); this test
    # needs the raw two-step, two-filter plan to exercise reordering.
    cascade = QueryPlanner(filters).plan(query, analyze=False)
    assert cascade.primary_filter is trained_od_filter
    reordered = FilterCascade(steps=list(reversed(cascade.steps)))
    assert reordered.filters[0] is trained_od_cof  # first-use order changed...
    assert reordered.primary_filter is trained_od_filter  # ...the CV source did not
    assert trained_od_cof.class_aware is False
    # A cascade with only count-only filters falls back to its first filter.
    cof_only = FilterCascade(steps=[s for s in cascade.steps if s.frame_filter is trained_od_cof])
    assert cof_only.primary_filter is trained_od_cof


def test_execute_aggregate_windowed_spec_reports_per_window(trained_od_filter, tiny_jackson):
    query = QueryBuilder("w").count("car").at_least(1).window(25, 25).build()
    spec = AggregateQuerySpec.from_query(query, [query_indicator_control(query)])
    assert spec.window == WindowSpec(25, 25)
    cascade = QueryPlanner({"od": trained_od_filter}).plan(query)
    result = _executor(tiny_jackson.class_names, seed=13).execute_aggregate(
        spec, tiny_jackson.test, cascade, sample_size=10, repetitions=2, seed=1
    )
    assert result.reports == ()
    assert [w.bounds for w in result.windows] == [WindowBounds(0, 25), WindowBounds(25, 50)]
    for window in result.windows:
        assert len(window.reports) == 2
        assert all(report.num_samples == 10 for report in window.reports)
        assert window.cv_mean == pytest.approx(
            sum(report.control_variate.mean for report in window.reports) / 2
        )
    assert len(result.all_reports) == 4


class _EmptyStream:
    def __len__(self) -> int:
        return 0

    def frame(self, index: int):
        raise IndexError(index)


def test_windowed_execution_of_empty_stream_returns_empty_result(windowed_plan, tiny_jackson):
    """An empty stream is an empty execution, as in the un-windowed path."""
    query, cascade = windowed_plan
    result = _executor(tiny_jackson.class_names).execute(query, _EmptyStream(), cascade)
    assert result.matched_frames == ()
    assert result.windows == ()
    assert result.stats.frames_scanned == 0


def test_windows_with_gaps_scan_only_covered_frames(trained_od_filter, tiny_jackson):
    """advance > size leaves inter-window gaps that are never scanned."""
    query = QueryBuilder("gappy").count("car").at_least(1).window(10, 30).build()
    cascade = QueryPlanner({"od": trained_od_filter}).plan(query)
    result = _executor(tiny_jackson.class_names).execute(query, tiny_jackson.test, cascade)
    assert [w.bounds for w in result.windows] == [WindowBounds(0, 10), WindowBounds(30, 40)]
    assert result.stats.frames_scanned == 20
    assert all(index < 10 or 30 <= index < 40 for index in result.matched_frames)


def test_execute_aggregate_window_larger_than_stream_raises(trained_od_filter, tiny_jackson):
    query = QueryBuilder("too_big").count("car").at_least(1).window(100, 100).build()
    spec = AggregateQuerySpec.from_query(query, [query_indicator_control(query)])
    cascade = QueryPlanner({"od": trained_od_filter}).plan(query)
    executor = _executor(tiny_jackson.class_names)
    with pytest.raises(ValueError, match="no instances"):
        executor.execute_aggregate(spec, tiny_jackson.test, cascade, sample_size=5)
    # execute() agrees: an instance-less window is a configuration error, not
    # an empty answer.
    with pytest.raises(ValueError, match="no instances"):
        executor.execute(query, tiny_jackson.test, cascade, include_partial_windows=False)
    # One partial window over the whole (shorter) stream is still an estimate.
    result = executor.execute_aggregate(
        spec, tiny_jackson.test, cascade, sample_size=5, include_partial_windows=True
    )
    assert [w.bounds for w in result.windows] == [WindowBounds(0, 50)]


def test_execute_aggregate_validation(trained_od_filter, tiny_jackson):
    query = QueryBuilder("q").count("car").at_least(1).build()
    spec = AggregateQuerySpec.from_query(query, [query_indicator_control(query)])
    executor = _executor(tiny_jackson.class_names)
    with pytest.raises(ValueError):
        executor.execute_aggregate(spec, tiny_jackson.test, FilterCascade())
    with pytest.raises(ValueError):
        executor.execute_aggregate(
            spec, tiny_jackson.test, frame_filter=trained_od_filter, repetitions=0
        )
    # An explicit filter stands in for an empty cascade.
    result = executor.execute_aggregate(
        spec, tiny_jackson.test, frame_filter=trained_od_filter, sample_size=5
    )
    assert result.cascade_description == "(empty)"
    assert result.filter_name == trained_od_filter.name


def test_evaluate_samples_batched_matches_per_frame_loop(trained_od_filter, tiny_jackson):
    """The predict_batch fast path must agree with the historical per-frame loop.

    Exact equality is justified for indicator controls: they consume only
    integer counts and thresholded masks, which the batch-parity tests pin
    as identical between predict and predict_batch (raw scores may differ at
    the last ulp).
    """
    query = QueryBuilder("q").count("car").at_least(1).build()
    control = query_indicator_control(query)
    spec = AggregateQuerySpec.from_query(query, [control])
    monitor = AggregateMonitor(
        detector=ReferenceDetector(class_names=tiny_jackson.class_names, seed=9),
        frame_filter=trained_od_filter,
        seed=0,
    )
    indices = [0, 3, 7, 11, 24]
    exact_values, controls, _ = monitor._evaluate_samples(spec, tiny_jackson.test, indices)
    reference_detector = ReferenceDetector(class_names=tiny_jackson.class_names, seed=9)
    for row, frame_index in enumerate(indices):
        frame = tiny_jackson.test.frame(frame_index)
        prediction = trained_od_filter.predict(frame)
        detections = reference_detector.detect(frame)
        assert exact_values[row] == spec.exact_value(detections)
        assert controls[row, 0] == control(prediction)


def test_window_tail_drop_warning_deduplicates_per_registry():
    """A shared ``warn_registry`` collapses repeated tail-drop warnings.

    A scan loop evaluates the same window spec once per chunk; without the
    registry every evaluation re-warns about the same dropped tail.
    """
    from repro.aggregates.windows import HoppingWindow
    from repro.analysis import WindowTailDropWarning

    window = HoppingWindow(size=20, advance=10)

    # Without a registry: each evaluation warns about the dropped tail.
    with pytest.warns(WindowTailDropWarning) as caught:
        list(window.windows_over(50))
        list(window.windows_over(50))
    assert len(caught) == 2

    # With a shared registry: one warning per distinct dropped tail per scan.
    registry: set = set()
    with pytest.warns(WindowTailDropWarning) as caught:
        list(window.windows_over(50, warn_registry=registry))
        list(window.windows_over(50, warn_registry=registry))
    assert len(caught) == 1

    # A different tail shape still warns (distinct key), once.
    with pytest.warns(WindowTailDropWarning) as caught:
        list(window.windows_over(55, warn_registry=registry))
        list(window.windows_over(55, warn_registry=registry))
    assert len(caught) == 1
