"""Seeded chaos soak: every fault site fired during the standing-query soak.

The capstone promise of the fault layer, asserted end to end: run the
8-query / 2-worker soak (one inline stream, one parallel process-backend
stream) twice — once clean, once under a :class:`FaultInjector` whose
schedule hits *every* fault site, including at least one process-worker
crash and one poison chunk — and

* every recoverable fault leaves its stream's results bit-identical to
  the clean run;
* the one poison chunk removes exactly its own frames and nothing else,
  and surfaces as a quarantine record plus a ``kind="fault"`` emission;
* every scheduled fault is accounted for (``unfired()`` is empty and the
  :class:`FaultReport` tallies injections, retries, respawns and
  re-dispatches);
* the service tears down without leaking threads, child processes or
  shared-memory segments.

Filter faults are deliberately routed through the *inline* stream only:
a process worker's forked schedule copy would re-fire them on
re-dispatch, which is exactly the divergence the parent-side
``worker_directive`` protocol exists to avoid.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import threading
import time

import pytest

from repro.detection import ReferenceDetector
from repro.faults import FaultInjector, RetryPolicy
from repro.query import ParallelConfig, PlannerConfig, QueryBuilder, QueryPlanner
from repro.service import BufferEmitter, QueryService, StreamConfig

pytestmark = pytest.mark.chaos

DETECTOR_SEED = 77
TOTAL_FRAMES = 240
CHUNK_SIZE = 8
CHAOS_RETRY = RetryPolicy(max_attempts=3, backoff_ms=1.0, backoff_factor=2.0)

#: The soak's fault schedule.  Recoverable everywhere except the poison
#: chunk: ``filter@64`` fires ``max_attempts`` times, exhausting the retry
#: budget for the inline chunk whose first frame is 64.
CHAOS_SCHEDULE = {
    ("decode", 7): 1,  # during frame materialisation (retried transparently)
    ("filter", 16): 1,  # inline chunk retry on the north stream
    ("filter", 64): CHAOS_RETRY.max_attempts,  # the poison chunk
    ("detector", 37): 1,  # frame-level retry on the north stream
    ("worker_crash", 3): 1,  # kills a process-pool worker on the south stream
    ("worker_stall", 11): 1,  # wedges one; the supervisor times it out
    ("queue_stall", 2): 1,  # one ingestion dequeue times out empty
    ("emitter", 6): 1,  # one delivery to the buffer emitter raises
    ("shard_crash", "north:12"): 1,  # shard worker dies mid-chunk, replays
}
POISON_FRAMES = tuple(range(64, 64 + CHUNK_SIZE))


@pytest.fixture(scope="module")
def od_planner(trained_od_filter):
    return QueryPlanner({"od": trained_od_filter}, PlannerConfig(count_tolerance=1))


def _looped_frames(stream, total):
    base = [stream.frame(index) for index in range(len(stream))]
    return [
        dataclasses.replace(base[index % len(base)], index=index)
        for index in range(total)
    ]


def _run_soak(od_planner, tiny_jackson, *, emitters=()):
    """One 8-query/2-worker soak pass; returns (per-handle results, stats).

    ``north`` scans inline (filter/detector/shard faults live here, and its
    first query carries no cascade so every frame reaches the detector);
    ``south`` scans through the supervised process-backend parallel engine
    (worker crash/stall faults live there).
    """
    service = QueryService(emitters=list(emitters))
    parallel = ParallelConfig(
        num_workers=2,
        backend="process",
        chunk_size=CHUNK_SIZE,
        supervise=True,
        worker_timeout_seconds=0.5,
    )
    for name, config in (
        ("north", StreamConfig(chunk_size=CHUNK_SIZE, queue_chunks=4, policy="block")),
        (
            "south",
            StreamConfig(
                chunk_size=CHUNK_SIZE,
                queue_chunks=4,
                policy="block",
                parallel=parallel,
            ),
        ),
    ):
        service.attach_stream(
            name,
            ReferenceDetector(class_names=tiny_jackson.class_names, seed=DETECTOR_SEED),
            config,
        )
    handles: dict[str, list[int]] = {"north": [], "south": []}
    for name in handles:
        for position in range(4):
            query = (
                QueryBuilder(f"{name}_q{position}")
                .count("car").at_least(1 + position % 2)
                .build()
            )
            # north_q0 runs cascade-free so the detector sees every frame
            # (the detector fault site needs a frame that surely reaches it).
            cascade = (
                None
                if (name, position) == ("north", 0)
                else od_planner.plan(query)
            )
            handles[name].append(service.register(name, query, cascade))

    service.start()
    frames = _looped_frames(tiny_jackson.test, TOTAL_FRAMES)
    for start in range(0, TOTAL_FRAMES, 24):
        batch = frames[start : start + 24]
        for name in handles:
            service.feed(name, batch)
    service.stop(drain=True)
    stats = {name: service.stats().streams[name] for name in handles}
    results = service.close()
    return (
        {name: [results[handle] for handle in handles[name]] for name in handles},
        stats,
    )


def _assert_parity(result, baseline):
    assert result.query_name == baseline.query_name
    assert result.matched_frames == baseline.matched_frames
    assert result.stats.frames_scanned == baseline.stats.frames_scanned
    assert result.stats.frames_passed_filters == baseline.stats.frames_passed_filters
    assert result.stats.detector_invocations == baseline.stats.detector_invocations
    assert result.stats.filter_invocations == baseline.stats.filter_invocations
    assert (
        result.stats.simulated_cost.per_component_calls
        == baseline.stats.simulated_cost.per_component_calls
    )
    assert result.stats.simulated_cost.total_ms == pytest.approx(
        baseline.stats.simulated_cost.total_ms
    )


def _shm_entries():
    if not os.path.isdir("/dev/shm"):
        return set()
    return set(os.listdir("/dev/shm"))


def _await_teardown(thread_floor, shm_floor, timeout=10.0):
    """Wait out straggler teardown (an abandoned stalled worker finishes its
    injected sleep before its pool winds down), then assert no leaks."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        threads_ok = threading.active_count() <= thread_floor
        children = multiprocessing.active_children()
        shm_ok = _shm_entries() <= shm_floor
        if threads_ok and not children and shm_ok:
            return
        time.sleep(0.1)
    assert threading.active_count() <= thread_floor, (
        f"leaked threads: {[t.name for t in threading.enumerate()]}"
    )
    assert not multiprocessing.active_children(), (
        f"leaked processes: {multiprocessing.active_children()}"
    )
    assert _shm_entries() <= shm_floor, (
        f"leaked shared memory: {sorted(_shm_entries() - shm_floor)}"
    )


def test_chaos_soak_is_bit_identical_and_fully_accounted(
    od_planner, tiny_jackson
):
    thread_floor = threading.active_count()
    shm_floor = _shm_entries()

    baseline, baseline_stats = _run_soak(od_planner, tiny_jackson)
    for name in ("north", "south"):
        assert baseline_stats[name].faults is None
        assert baseline_stats[name].quarantined_chunks == 0

    buffer = BufferEmitter()
    injector = FaultInjector(
        seed=11, schedule=CHAOS_SCHEDULE, stall_seconds=1.2, retry=CHAOS_RETRY
    )
    with pytest.warns(RuntimeWarning, match="BufferEmitter"):
        with injector:
            chaos, chaos_stats = _run_soak(
                od_planner, tiny_jackson, emitters=[buffer]
            )

    # -- the capstone: every scheduled fault fired, and is accounted ------
    assert injector.unfired() == ()
    report = injector.report(
        tuple(chaos_stats["north"].faults.quarantined)
        + tuple(chaos_stats["south"].faults.quarantined)
    )
    expected_by_site: dict[str, int] = {}
    for (site, _key), count in CHAOS_SCHEDULE.items():
        expected_by_site[site] = expected_by_site.get(site, 0) + count
    assert report.by_site() == expected_by_site
    assert report.exhausted == 1  # exactly the poison chunk
    assert report.recovered >= 3  # decode, filter@16, detector@37
    assert report.respawns >= 2  # crashed pool + stalled pool
    assert report.redispatches >= 2  # both south chunks were re-dispatched
    assert report.backoff_ms > 0.0  # simulated, never wall-clock
    assert len(report.quarantined) == 1

    # -- south (process workers, crash + stall): bit-identical ------------
    for result, base in zip(chaos["south"], baseline["south"]):
        _assert_parity(result, base)
    assert chaos_stats["south"].quarantined_chunks == 0
    assert chaos_stats["south"].chunks_processed == TOTAL_FRAMES // CHUNK_SIZE
    assert chaos_stats["south"].queue_depth == 0

    # -- north: exactly the poison chunk is lost, nothing else ------------
    lost = set(POISON_FRAMES)
    for result, base in zip(chaos["north"], baseline["north"]):
        assert result.matched_frames == tuple(
            index for index in base.matched_frames if index not in lost
        )
    assert chaos_stats["north"].quarantined_chunks == 1
    assert chaos_stats["north"].chunks_processed == TOTAL_FRAMES // CHUNK_SIZE
    record = chaos_stats["north"].faults.quarantined[0]
    assert record.site == "filter"
    assert record.frames == POISON_FRAMES

    # -- the poison chunk surfaced as a fault emission ---------------------
    fault_emissions = buffer.emissions(kind="fault")
    assert len(fault_emissions) == 1
    assert fault_emissions[0].stream == "north"
    assert fault_emissions[0].handle == -1
    assert fault_emissions[0].fault.frames == POISON_FRAMES
    # The injected emitter raise was counted, not fatal.
    assert chaos_stats["north"].emitter_errors + chaos_stats[
        "south"
    ].emitter_errors == 1

    # -- no thread / process / shared-memory leaks ------------------------
    _await_teardown(thread_floor, shm_floor)
