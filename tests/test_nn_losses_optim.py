"""Tests for losses, optimisers and network containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Dense,
    GlobalAveragePooling2D,
    MSELoss,
    MultiHeadNetwork,
    ReLU,
    SGD,
    Sequential,
    SmoothL1Loss,
    SoftmaxCrossEntropy,
    Conv2D,
)


def test_mse_loss_value_and_gradient():
    loss = MSELoss()
    pred = np.array([[1.0, 2.0], [3.0, 4.0]])
    target = np.array([[1.0, 0.0], [3.0, 8.0]])
    value = loss.forward(pred, target)
    assert value == pytest.approx((0 + 4 + 0 + 16) / 4)
    grad = loss.backward()
    assert grad.shape == pred.shape
    assert grad[0, 1] == pytest.approx(2 * 2 / 4)
    with pytest.raises(ValueError):
        loss.forward(pred, target[:1])


def test_smooth_l1_is_quadratic_then_linear():
    loss = SmoothL1Loss(beta=1.0)
    small = loss.forward(np.array([0.5]), np.array([0.0]))
    assert small == pytest.approx(0.125)
    large = loss.forward(np.array([3.0]), np.array([0.0]))
    assert large == pytest.approx(2.5)
    grad = loss.backward()
    assert grad[0] == pytest.approx(1.0)  # sign(diff) / n
    with pytest.raises(ValueError):
        SmoothL1Loss(beta=0.0)


def test_softmax_cross_entropy():
    loss = SoftmaxCrossEntropy()
    logits = np.array([[10.0, 0.0, 0.0], [0.0, 10.0, 0.0]])
    targets = np.array([0, 1])
    assert loss.forward(logits, targets) < 1e-3
    wrong = loss.forward(logits, np.array([1, 0]))
    assert wrong > 5.0
    grad = loss.backward()
    assert grad.shape == logits.shape
    with pytest.raises(ValueError):
        loss.forward(logits, np.array([[0], [1]]))


def test_sgd_and_adam_reduce_loss_on_regression():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(64, 5))
    true_w = rng.normal(size=(5, 1))
    y = x @ true_w

    for optimizer in (SGD(learning_rate=0.05, momentum=0.9, weight_decay=0.0),
                      Adam(learning_rate=0.05)):
        layer = Dense(5, 1, seed=1)
        loss = MSELoss()
        first = None
        for _ in range(200):
            pred = layer.forward(x)
            value = loss.forward(pred, y)
            if first is None:
                first = value
            layer.zero_grad()
            layer.backward(loss.backward())
            optimizer.step([(layer.params(), layer.grads())])
        assert value < first * 0.05


def test_learning_rate_decay():
    optimizer = Adam(learning_rate=1e-2, lr_decay=0.1)
    assert optimizer.learning_rate == pytest.approx(1e-2)
    optimizer.step([])
    optimizer.step([])
    assert optimizer.learning_rate < 1e-2
    with pytest.raises(ValueError):
        SGD(learning_rate=-1)
    with pytest.raises(ValueError):
        SGD(momentum=1.5)


def test_multihead_network_roundtrip(tmp_path):
    trunk = Sequential([Conv2D(1, 2, kernel_size=3, padding=1, seed=0), ReLU()])
    heads = {
        "counts": Sequential([GlobalAveragePooling2D(), Dense(2, 3, seed=1)]),
        "grid": Sequential([Conv2D(2, 1, kernel_size=1, seed=2)]),
    }
    network = MultiHeadNetwork(trunk=trunk, heads=heads)
    x = np.random.default_rng(1).normal(size=(2, 1, 4, 4))
    outputs = network.forward(x)
    assert outputs["counts"].shape == (2, 3)
    assert outputs["grid"].shape == (2, 1, 4, 4)
    grad = network.backward({"counts": np.ones((2, 3)), "grid": np.ones((2, 1, 4, 4))})
    assert grad.shape == x.shape
    with pytest.raises(KeyError):
        network.backward({"unknown": np.ones((2, 3))})

    # Save / load round trip preserves outputs.
    path = tmp_path / "weights.npz"
    network.save(path)
    network2 = MultiHeadNetwork(
        trunk=Sequential([Conv2D(1, 2, kernel_size=3, padding=1, seed=9), ReLU()]),
        heads={
            "counts": Sequential([GlobalAveragePooling2D(), Dense(2, 3, seed=8)]),
            "grid": Sequential([Conv2D(2, 1, kernel_size=1, seed=7)]),
        },
    )
    network2.load(path)
    outputs2 = network2.forward(x)
    np.testing.assert_allclose(outputs["counts"], outputs2["counts"])
    np.testing.assert_allclose(outputs["grid"], outputs2["grid"])

    # Freezing the trunk excludes its parameters from the optimiser groups.
    assert len(network.parameter_groups(include_trunk=False)) < len(network.parameter_groups())


def test_weights_roundtrip_without_npz_suffix(tmp_path):
    """``save("weights")`` writes ``weights.npz``; loading by the bare name
    must find that file instead of raising ``FileNotFoundError``."""
    x = np.random.default_rng(0).normal(size=(4, 3))
    net = Sequential([Dense(3, 2, seed=0)])
    bare = tmp_path / "weights"
    net.save(bare)
    assert (tmp_path / "weights.npz").exists()
    other = Sequential([Dense(3, 2, seed=5)])
    Sequential.load_into(other, bare)
    np.testing.assert_allclose(net.forward(x), other.forward(x))

    network = MultiHeadNetwork(
        trunk=Sequential([Dense(3, 2, seed=1)]),
        heads={"out": Sequential([Dense(2, 1, seed=2)])},
    )
    network.save(tmp_path / "multi")
    assert (tmp_path / "multi.npz").exists()
    clone = MultiHeadNetwork(
        trunk=Sequential([Dense(3, 2, seed=8)]),
        heads={"out": Sequential([Dense(2, 1, seed=9)])},
    )
    clone.load(tmp_path / "multi")
    np.testing.assert_allclose(network.forward(x)["out"], clone.forward(x)["out"])
    # An explicit .npz suffix keeps working in both directions.
    network.save(tmp_path / "multi2.npz")
    clone.load(tmp_path / "multi2.npz")


def test_sequential_state_dict_validation():
    net = Sequential([Dense(3, 2, seed=0)])
    state = net.state_dict()
    bad = dict(state)
    bad["layer0.weight"] = np.zeros((5, 5))
    with pytest.raises(ValueError):
        net.load_state_dict(bad)
    with pytest.raises(KeyError):
        net.load_state_dict({})
