"""Tests for sampling estimation, control variates and aggregate monitoring."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aggregates import (
    AggregateMonitor,
    AggregateQuerySpec,
    HoppingWindow,
    SlidingWindow,
    WindowBounds,
    class_count_control,
    control_variate_estimate,
    multiple_control_variates_estimate,
    optimal_beta,
    per_predicate_controls,
    query_indicator_control,
    sample_frame_indices,
    sample_mean_estimate,
)
from repro.detection import ReferenceDetector
from repro.query import QueryBuilder


def test_sample_mean_estimate_basics():
    estimate = sample_mean_estimate([1.0, 2.0, 3.0, 4.0])
    assert estimate.mean == pytest.approx(2.5)
    assert estimate.num_samples == 4
    low, high = estimate.confidence_interval
    assert low < 2.5 < high
    assert estimate.half_width == pytest.approx((high - low) / 2)
    with pytest.raises(ValueError):
        sample_mean_estimate([])
    with pytest.raises(ValueError):
        sample_mean_estimate([1.0], confidence_level=1.5)


def test_sample_frame_indices(rng):
    indices = sample_frame_indices(100, 20, rng)
    assert len(indices) == 20
    assert len(set(indices.tolist())) == 20
    assert sample_frame_indices(5, 10, rng).shape == (5,)  # capped without replacement
    with pytest.raises(ValueError):
        sample_frame_indices(0, 5, rng)


def test_control_variates_reduce_variance_on_correlated_data(rng):
    # Y = X + small noise: the CV estimator should nearly eliminate variance.
    x = rng.normal(10.0, 2.0, size=400)
    y = x + rng.normal(0.0, 0.2, size=400)
    estimate = control_variate_estimate(y, x, control_mean=10.0)
    assert estimate.variance < estimate.plain_variance / 10
    assert estimate.variance_reduction > 10
    assert estimate.correlation > 0.95
    assert abs(estimate.beta[0] - 1.0) < 0.1
    # With an uncorrelated control there is no benefit.
    unrelated = rng.normal(size=400)
    weak = control_variate_estimate(y, unrelated)
    assert weak.variance_reduction < 2.0


def test_control_variate_estimator_is_consistent(rng):
    # The CV-corrected mean stays close to the true mean.
    true_mean = 5.0
    x = rng.normal(2.0, 1.0, size=800)
    y = true_mean + 2.0 * (x - 2.0) + rng.normal(0.0, 0.5, size=800)
    estimate = control_variate_estimate(y, x, control_mean=2.0)
    assert estimate.mean == pytest.approx(true_mean, abs=0.2)
    assert optimal_beta(y, x) == pytest.approx(2.0, abs=0.2)


def test_multiple_control_variates(rng):
    z1 = rng.normal(size=500)
    z2 = rng.normal(size=500)
    y = 1.0 + 2.0 * z1 - 1.5 * z2 + rng.normal(0.0, 0.3, size=500)
    controls = np.stack([z1, z2], axis=1)
    estimate = multiple_control_variates_estimate(y, controls, control_means=[0.0, 0.0])
    assert estimate.mean == pytest.approx(1.0, abs=0.15)
    assert estimate.beta[0] == pytest.approx(2.0, abs=0.2)
    assert estimate.beta[1] == pytest.approx(-1.5, abs=0.2)
    assert estimate.variance_reduction > 5
    assert 0.9 <= estimate.correlation <= 1.0
    with pytest.raises(ValueError):
        multiple_control_variates_estimate(y[:3], controls[:3])
    with pytest.raises(ValueError):
        multiple_control_variates_estimate(y, controls, control_means=[0.0])


@settings(max_examples=25)
@given(st.lists(st.floats(-5, 5), min_size=5, max_size=40))
def test_cv_with_identical_control_matches_plain_mean(values):
    y = np.array(values)
    estimate = control_variate_estimate(y, y.copy())
    # Using Y itself as the control with mu set to the sample mean leaves the
    # mean unchanged and the estimator remains finite.
    assert estimate.mean == pytest.approx(estimate.plain_mean)
    assert estimate.variance >= 0.0


def test_windows():
    hopping = HoppingWindow(size=10, advance=5)
    windows = list(hopping.windows_over(23))
    assert windows[0] == WindowBounds(0, 10)
    assert windows[1] == WindowBounds(5, 15)
    assert all(w.size == 10 for w in windows)
    partial = list(hopping.windows_over(23, include_partial=True))
    assert partial[-1].size < 10
    sliding = list(SlidingWindow(size=5).windows_over(8))
    assert len(sliding) == 4
    assert WindowBounds(2, 6).contains(3)
    assert not WindowBounds(2, 6).contains(6)
    with pytest.raises(ValueError):
        HoppingWindow(size=0, advance=5)
    with pytest.raises(ValueError):
        WindowBounds(5, 5)


def test_hopping_window_tail_coverage():
    """Full-size-only windows silently drop the trailing remainder.

    ``size=100`` over 250 frames never covers frames 200–249 by default;
    ``include_partial=True`` (the executor's windowed-execution default)
    appends one shorter window covering the tail.
    """
    hopping = HoppingWindow(size=100, advance=100)
    covered: set[int] = set()
    for window in hopping.windows_over(250):
        covered.update(window.indices())
    assert max(covered) == 199 and 200 not in covered
    with_partial = list(hopping.windows_over(250, include_partial=True))
    covered_partial: set[int] = set()
    for window in with_partial:
        covered_partial.update(window.indices())
    assert covered_partial == set(range(250))
    assert with_partial[-1] == WindowBounds(200, 250)


def test_aggregate_monitor_end_to_end(trained_od_filter, tiny_jackson):
    detector = ReferenceDetector(class_names=tiny_jackson.class_names, seed=13)
    monitor = AggregateMonitor(detector=detector, frame_filter=trained_od_filter, seed=5)
    query = QueryBuilder("cars_present").count("car").at_least(1).build()
    spec = AggregateQuerySpec.from_query(query, [query_indicator_control(query)])
    report = monitor.estimate(spec, tiny_jackson.test, sample_size=25)
    assert report.num_samples == 25
    assert 0.0 <= report.plain.mean <= 1.0
    # Per-sample cost = detector + one filter pass under the paper's latency model.
    assert report.per_frame_cost_ms == pytest.approx(200.0 + trained_od_filter.latency_ms, rel=0.01)
    assert report.cost_overhead_ms == pytest.approx(trained_od_filter.latency_ms, rel=0.05)
    assert report.variance_reduction >= 0.5
    row = report.as_row()
    assert row["query"] == "cars_present"
    # Multiple controls path.
    multi_query = (
        QueryBuilder("multi").count("car").at_least(1).count("person").at_least(1).build()
    )
    multi_spec = AggregateQuerySpec.from_query(
        multi_query, per_predicate_controls(multi_query)
    )
    multi_report = monitor.estimate(multi_spec, tiny_jackson.test, sample_size=25)
    assert len(multi_report.control_variate.beta) == 2
    # Repeated estimation returns independent reports.
    repeats = monitor.estimate_repeated(spec, tiny_jackson.test, sample_size=10, repetitions=3)
    assert len(repeats) == 3
    with pytest.raises(ValueError):
        monitor.estimate_repeated(spec, tiny_jackson.test, sample_size=10, repetitions=0)
    with pytest.raises(ValueError):
        AggregateQuerySpec(name="bad", exact_value=lambda d: 0.0, control_values=[])


def test_class_count_control(trained_od_filter, tiny_jackson):
    prediction = trained_od_filter.predict(tiny_jackson.test.frame(0))
    total_control = class_count_control(None)
    car_control = class_count_control("car")
    assert total_control(prediction) == float(prediction.total_count)
    assert car_control(prediction) == float(prediction.count_of("car"))


def test_monitor_keeps_shared_clock_history(trained_od_filter, tiny_jackson):
    """Regression: estimate() must not wipe a caller-supplied shared clock."""
    from repro.cost import SimulatedClock

    clock = SimulatedClock()
    clock.charge("pre_existing", 50.0)
    detector = ReferenceDetector(class_names=tiny_jackson.class_names, seed=13)
    monitor = AggregateMonitor(
        detector=detector, frame_filter=trained_od_filter, clock=clock, seed=5
    )
    query = QueryBuilder("cars_present").count("car").at_least(1).build()
    spec = AggregateQuerySpec.from_query(query, [query_indicator_control(query)])
    first = monitor.estimate(spec, tiny_jackson.test, sample_size=10)
    second = monitor.estimate(spec, tiny_jackson.test, sample_size=10)
    # Per-estimate cost is a delta, not the running total...
    assert first.per_frame_cost_ms == pytest.approx(second.per_frame_cost_ms)
    assert first.per_frame_cost_ms == pytest.approx(
        200.0 + trained_od_filter.latency_ms, rel=0.01
    )
    # ...and the shared clock keeps its history across estimates.
    assert clock.breakdown.per_component_ms["pre_existing"] == 50.0
    assert clock.breakdown.per_component_calls["mask_rcnn"] == 20
