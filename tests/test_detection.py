"""Tests for the detector simulators, feature backbone and annotation pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost import MASK_RCNN_MS, SimulatedClock, YOLO_FULL_MS
from repro.detection import (
    DetectorErrorModel,
    FastDetector,
    ReferenceDetector,
    annotate_stream,
    classification_backbone,
    detection_backbone,
)
from repro.detection.annotation import annotate_frame
from repro.detection.base import Detection, FrameDetections
from repro.spatial.geometry import Box


def test_detection_validation():
    with pytest.raises(ValueError):
        Detection(class_name="car", box=Box(0, 0, 1, 1), score=1.5)


def test_frame_detections_counts_and_masks(tiny_jackson):
    detector = ReferenceDetector(class_names=tiny_jackson.class_names, seed=1)
    frame = tiny_jackson.test.frame(5)
    detections = detector.detect(frame)
    assert detections.count == len(detections.detections)
    counts = detections.counts_by_class()
    assert sum(counts.values()) == detections.count
    grid = tiny_jackson.grid(28)
    for name in tiny_jackson.class_names:
        mask = detections.location_mask(grid, name)
        assert (mask.count > 0) == (detections.count_of(name) > 0)
    filtered = detections.filtered(min_score=0.99)
    assert filtered.count <= detections.count


def test_reference_detector_matches_ground_truth_closely(tiny_jackson):
    detector = ReferenceDetector(class_names=tiny_jackson.class_names, seed=1)
    total_error = 0
    frames = 0
    for index in range(0, 40, 4):
        frame = tiny_jackson.test.frame(index)
        detections = detector.detect(frame)
        total_error += abs(detections.count - frame.ground_truth.count)
        frames += 1
    assert total_error / frames < 0.5  # near-perfect, as Mask R-CNN effectively is


def test_detector_is_deterministic_per_frame(tiny_jackson):
    detector = ReferenceDetector(class_names=tiny_jackson.class_names, seed=1)
    frame = tiny_jackson.test.frame(7)
    a = detector.detect(frame)
    b = detector.detect(frame)
    assert a.counts_by_class() == b.counts_by_class()


def test_detector_charges_latency(tiny_jackson):
    clock = SimulatedClock()
    detector = ReferenceDetector(class_names=tiny_jackson.class_names, clock=clock)
    detector.detect(tiny_jackson.test.frame(0))
    assert clock.elapsed_ms == pytest.approx(MASK_RCNN_MS)
    fast_clock = SimulatedClock()
    fast = FastDetector(class_names=tiny_jackson.class_names, clock=fast_clock)
    fast.detect(tiny_jackson.test.frame(0))
    assert fast_clock.elapsed_ms == pytest.approx(YOLO_FULL_MS)


def test_fast_detector_is_noisier_than_reference(tiny_detrac):
    reference = ReferenceDetector(class_names=tiny_detrac.class_names, seed=2)
    fast = FastDetector(class_names=tiny_detrac.class_names, seed=2)
    reference_error = 0
    fast_error = 0
    for index in range(0, 40, 4):
        frame = tiny_detrac.test.frame(index)
        truth = frame.ground_truth.count
        reference_error += abs(reference.detect(frame).count - truth)
        fast_error += abs(fast.detect(frame).count - truth)
    assert fast_error >= reference_error


def test_error_model_validation():
    with pytest.raises(ValueError):
        DetectorErrorModel(miss_rate=1.5)
    with pytest.raises(ValueError):
        DetectorErrorModel(box_jitter=-0.1)


def test_backbone_feature_shapes(tiny_jackson):
    for backbone in (detection_backbone(56), classification_backbone(56)):
        backbone.fit_background(tiny_jackson.train.iter_range(0, 20, 2))
        features = backbone.extract_frame(tiny_jackson.test.frame(0))
        assert features.shape == (56, 56, backbone.num_features)
        assert np.isfinite(features).all()
    with pytest.raises(ValueError):
        detection_backbone(56).extract(np.zeros((112, 112)))


def test_backbone_background_subtraction_highlights_objects(tiny_jackson):
    backbone = detection_backbone(56)
    backbone.fit_background(tiny_jackson.train.iter_range(0, 30, 2))
    # Find a frame with at least one object and check the background-difference
    # channel is stronger on object cells than off them.
    for index in range(len(tiny_jackson.test)):
        frame = tiny_jackson.test.frame(index)
        if frame.ground_truth.count > 0:
            break
    features = backbone.extract_frame(frame)
    diff = features[:, :, 5]
    grid = tiny_jackson.grid(56)
    object_mask = np.zeros((56, 56), dtype=bool)
    for state in frame.ground_truth.objects:
        for row, col in grid.cells_overlapping_box(state.box):
            object_mask[row, col] = True
    assert diff[object_mask].mean() > diff[~object_mask].mean() * 2


def test_annotation_pipeline(tiny_jackson):
    detector = ReferenceDetector(class_names=tiny_jackson.class_names, seed=9)
    grid = tiny_jackson.grid(56)
    annotations = annotate_stream(
        tiny_jackson.train, detector, tiny_jackson.class_names, grid, frame_indices=range(0, 20, 2)
    )
    assert len(annotations) == 10
    matrix = annotations.counts_matrix()
    assert matrix.shape == (10, len(tiny_jackson.class_names))
    totals = annotations.total_counts()
    np.testing.assert_allclose(totals, matrix.sum(axis=1))
    tensor = annotations.location_tensor("car")
    assert tensor.shape == (10, 56, 56)
    frequencies = annotations.class_frequencies()
    assert all(0.0 <= value <= 1.0 for value in frequencies.values())
    # Counts and grids are consistent per frame.
    for annotated in annotations:
        for name in tiny_jackson.class_names:
            if annotated.count_of(name) == 0:
                assert annotated.grid_of(name).sum() == 0


def test_annotate_frame_unknown_class():
    detections = FrameDetections(
        frame_index=0,
        detections=(Detection("car", Box(0, 0, 10, 10), 0.9),),
        latency_ms=1.0,
        detector_name="test",
    )
    from repro.spatial.grid import Grid

    grid = Grid(rows=8, cols=8, frame_width=80, frame_height=80)
    annotated = annotate_frame(detections, ["car", "bus"], grid)
    assert annotated.count_of("car") == 1
    assert annotated.count_of("bus") == 0
    assert annotated.grid_of("bus").sum() == 0
