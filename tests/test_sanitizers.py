"""Runtime sanitizers (RC0xx / NU0xx): golden findings, seeded races, overhead.

Unit-level tests drive :class:`SanitizerSession` directly with orchestrated
threads (every code gets a golden repro); engine-level tests seed real
defects into a parallel scan — a filter shared across worker clones
(``__deepcopy__`` returning ``self``) for the RC003 race, a thread-dependent
check for RC004 nondeterminism, NaN-poisoned weights for NU001 — and assert
the sanitized engine rejects them while ``sanitize=None`` stays bit-identical
to the sequential path with every hook uninstalled.

Run with ``pytest -m parallel`` (CI's sanitize job runs this module).
"""

from __future__ import annotations

import copy
import threading
import time

import numpy as np
import pytest

from repro.analysis import AnalysisError
from repro.analysis.sanitizers import (
    HOOK_SITES,
    SANITIZE_MODES,
    SanitizerSession,
    active_session,
    chunk_digest,
    parse_sanitize_spec,
    sanitized_scan,
)
from repro.cost import SimulatedClock
from repro.detection import ReferenceDetector
from repro.filters.base import FilterPrediction, FrameFilter
from repro.filters.neural import NeuralBranchFilter, build_branch_network
from repro.query import (
    CascadeStep,
    FilterCascade,
    ParallelConfig,
    QueryBuilder,
    StreamingQueryExecutor,
)
from repro.spatial.grid import Grid

pytestmark = pytest.mark.parallel


# ----------------------------------------------------------------------
# Spec parsing and config validation
# ----------------------------------------------------------------------
def test_parse_sanitize_spec_accepts_all_forms():
    assert parse_sanitize_spec(None) == frozenset()
    assert parse_sanitize_spec("race") == frozenset({"race"})
    assert parse_sanitize_spec("race,numeric") == frozenset({"race", "numeric"})
    assert parse_sanitize_spec("race + determinism") == frozenset(
        {"race", "determinism"}
    )
    assert parse_sanitize_spec("all") == frozenset(SANITIZE_MODES)
    assert parse_sanitize_spec(["numeric"]) == frozenset({"numeric"})
    with pytest.raises(ValueError, match="unknown sanitizer"):
        parse_sanitize_spec("rase")


def test_parallel_config_rejects_in_process_modes_on_process_backend():
    with pytest.raises(ValueError, match="process backend"):
        ParallelConfig(num_workers=2, backend="process", sanitize="race")
    # Determinism only digests merge-loop state in the parent process.
    config = ParallelConfig(num_workers=2, backend="process", sanitize="determinism")
    assert config.sanitize_modes == frozenset({"determinism"})


def test_repro_sanitize_env_supplies_the_default(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "race,numeric")
    assert ParallelConfig(num_workers=2).sanitize_modes == frozenset(
        {"race", "numeric"}
    )
    # Explicit sanitize= wins over the environment.
    assert ParallelConfig(num_workers=2, sanitize="determinism").sanitize_modes == (
        frozenset({"determinism"})
    )
    # Incompatible env modes are dropped (not raised) for the process backend.
    assert ParallelConfig(
        num_workers=2, backend="process"
    ).sanitize_modes == frozenset()


def test_one_active_session_per_process():
    with sanitized_scan("race") as session:
        assert active_session() is session
        with pytest.raises(RuntimeError, match="already active"):
            SanitizerSession("numeric").activate()
    assert active_session() is None


# ----------------------------------------------------------------------
# Golden unit repros, one per code
# ----------------------------------------------------------------------
def _run_in_lockstep(first, second):
    """Run ``first`` and ``second`` so their critical sections overlap."""
    entered = threading.Barrier(2)
    errors: list[BaseException] = []

    def runner(body):
        try:
            body(entered)
        except BaseException as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [
        threading.Thread(target=runner, args=(body,), name=f"lockstep-{index}")
        for index, body in enumerate((first, second))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return errors


def test_rc001_disjoint_locksets_on_shared_state():
    session = SanitizerSession("race", strict=False)
    owner = object()

    def body(barrier):
        with session.cache_access(owner, frozenset((id(barrier),))):
            barrier.wait()
            time.sleep(0.01)

    def other_body(barrier):
        with session.cache_access(owner, frozenset()):
            barrier.wait()
            time.sleep(0.01)

    assert not _run_in_lockstep(body, other_body)
    report = session.report()
    assert report.codes == ("RC001",)
    assert "no common lock held" in report.diagnostics[0].message


def test_rc001_silent_when_a_common_lock_is_held():
    session = SanitizerSession("race", strict=False)
    owner = object()
    lock = threading.Lock()
    locks = frozenset((id(lock),))

    def body(barrier):
        barrier.wait()
        with lock, session.cache_access(owner, locks):
            time.sleep(0.005)

    assert not _run_in_lockstep(body, body)
    assert not session.report().diagnostics


def test_rc002_two_threads_in_one_worker_window():
    session = SanitizerSession("race", strict=False)

    def body(barrier):
        with session.worker_window(0, resource_key=1234):
            barrier.wait()
            time.sleep(0.01)

    assert not _run_in_lockstep(body, body)
    assert session.report().codes == ("RC002",)


def test_rc003_one_clock_charged_from_two_worker_windows():
    # The charges themselves never overlap — only the worker windows do —
    # so this exercises the cross-window ``touched`` detection, not the
    # direct temporal-overlap path.
    session = SanitizerSession("race", strict=False)
    clock = SimulatedClock()
    first_charged = threading.Event()
    second_done = threading.Event()

    def first(_barrier):
        with session.worker_window(0, resource_key=0):
            with session.clock_access(clock, "charge", "f", 1.0):
                pass
            first_charged.set()
            assert second_done.wait(timeout=5.0)  # hold the window open

    def second(_barrier):
        assert first_charged.wait(timeout=5.0)
        try:
            with session.worker_window(1, resource_key=1):
                with session.clock_access(clock, "charge", "f", 1.0):
                    pass
        finally:
            second_done.set()

    assert not _run_in_lockstep(first, second)
    report = session.report()
    assert "RC003" in report.codes
    assert "two concurrent worker tasks" in report.render()


def test_nu001_nu002_name_layer_and_chunk():
    session = SanitizerSession("numeric", strict=False)
    net = build_branch_network(2, image_size=8, grid_size=4)
    layer = net.trunk.layers[0]
    with session.worker_window(7, resource_key=id(net)):
        bad = np.array([[1.0, float("nan")], [float("inf"), 0.0]])
        session.check_layer_output(net, 0, layer, bad)
    codes = session.report().codes
    assert codes == ("NU001", "NU002")
    rendered = session.report().render()
    assert "Conv2D(3->8" in rendered
    assert "(chunk 7)" in rendered


def test_nu003_non_finite_charge_through_the_installed_hook():
    clock = SimulatedClock()
    with sanitized_scan("numeric", strict=False) as session:
        clock.charge("detector", float("inf"))
    report = session.report()
    assert report.codes == ("NU003",)
    assert "charge('detector', inf)" in report.diagnostics[0].message


def test_strict_session_raises_at_the_first_finding():
    session = SanitizerSession("numeric", strict=True)
    with pytest.raises(AnalysisError, match="NU001"):
        session.check_layer_output(
            object(), 0, object(), np.array([float("nan")])
        )


def test_chunk_digest_is_order_sensitive_and_stable():
    assert chunk_digest([[1, 2], [3]]) == chunk_digest([[1, 2], [3]])
    assert chunk_digest([[1, 2], [3]]) != chunk_digest([[2, 1], [3]])


# ----------------------------------------------------------------------
# Engine-level seeded defects
# ----------------------------------------------------------------------
class _CheapFilter(FrameFilter):
    """A deterministic filter that passes every frame (and can dawdle)."""

    family = "OD"
    name = "cheap_test_filter"
    latency_ms = 1.0

    def __init__(self, grid: Grid, delay_s: float = 0.0) -> None:
        super().__init__()
        self.grid = grid
        self.delay_s = delay_s

    def predict(self, frame) -> FilterPrediction:
        self._charge()
        if self.delay_s:
            time.sleep(self.delay_s)
        return FilterPrediction(
            frame_index=frame.index,
            filter_name=self.name,
            grid=self.grid,
            class_counts={"car": 1},
            class_scores={"car": 1.0},
            location_scores={},
            threshold=0.5,
            latency_ms=self.latency_ms,
        )


class _CloneResistantFilter(_CheapFilter):
    """The seeded race: worker 'clones' all alias one filter (and one clock)."""

    name = "clone_resistant_filter"

    def __deepcopy__(self, memo):
        return self


def _grid_for(stream) -> Grid:
    frame = stream.frame(0)
    return Grid(
        rows=4,
        cols=4,
        frame_width=frame.image.shape[1],
        frame_height=frame.image.shape[0],
    )


def _always_pass_cascade(frame_filter) -> FilterCascade:
    return FilterCascade(
        steps=[
            CascadeStep(
                name="seeded", frame_filter=frame_filter, check=lambda p: True
            )
        ]
    )


def _query():
    return QueryBuilder("sanitized").count("car").at_least(0).build()


def _executor(stream):
    return StreamingQueryExecutor(ReferenceDetector(class_names=("car",), seed=9))


def test_seeded_race_raises_rc003_under_sanitize_race(single_object_stream):
    stream = single_object_stream
    shared = _CloneResistantFilter(_grid_for(stream), delay_s=0.002)
    config = ParallelConfig(
        num_workers=2, backend="thread", chunk_size=4, sanitize="race"
    )
    with pytest.raises(AnalysisError) as excinfo:
        _executor(stream).execute(
            _query(), stream, _always_pass_cascade(shared), parallel=config
        )
    codes = {d.code for d in excinfo.value.diagnostics}
    assert codes & {"RC002", "RC003"}
    # The same seeded defect passes silently with the sanitizer off.
    clean = _executor(stream).execute(
        _query(), stream, _always_pass_cascade(shared), parallel=ParallelConfig(
            num_workers=2, backend="thread", chunk_size=4
        )
    )
    assert clean.stats.sanitizer_report is None


def test_honest_filter_is_race_clean(single_object_stream):
    stream = single_object_stream
    config = ParallelConfig(
        num_workers=2, backend="thread", chunk_size=4, sanitize="race,numeric"
    )
    result = _executor(stream).execute(
        _query(), stream, _always_pass_cascade(_CheapFilter(_grid_for(stream))),
        parallel=config,
    )
    report = result.stats.sanitizer_report
    assert report is not None and report.ok and not report.diagnostics


def test_thread_dependent_check_raises_rc004_under_determinism(single_object_stream):
    stream = single_object_stream
    cascade = FilterCascade(
        steps=[
            CascadeStep(
                name="thread-dependent",
                frame_filter=_CheapFilter(_grid_for(stream)),
                check=lambda p: threading.current_thread().name.startswith(
                    "filter-worker"
                ),
            )
        ]
    )
    config = ParallelConfig(
        num_workers=2, backend="thread", chunk_size=8, sanitize="determinism"
    )
    with pytest.raises(AnalysisError, match="RC004") as excinfo:
        _executor(stream).execute(_query(), stream, cascade, parallel=config)
    assert "chunk 0" in str(excinfo.value)


def test_deterministic_scan_is_rc004_clean(single_object_stream):
    stream = single_object_stream
    config = ParallelConfig(
        num_workers=2, backend="thread", chunk_size=8, sanitize="determinism"
    )
    result = _executor(stream).execute(
        _query(), stream, _always_pass_cascade(_CheapFilter(_grid_for(stream))),
        parallel=config,
    )
    assert result.stats.sanitizer_report is not None
    assert result.stats.sanitizer_report.ok


def test_nan_weights_raise_nu001_under_sanitize_numeric(single_object_stream):
    stream = single_object_stream
    network = build_branch_network(1, image_size=8, grid_size=4)
    network.set_training(False)
    conv = network.trunk.layers[0]
    conv.weight[0, 0, 0, 0] = float("nan")
    frame = stream.frame(0)
    poisoned = NeuralBranchFilter(
        network,
        class_names=("car",),
        image_size=8,
        grid_size=4,
        frame_width=frame.image.shape[1],
        frame_height=frame.image.shape[0],
    )
    config = ParallelConfig(
        num_workers=2, backend="thread", chunk_size=8, sanitize="numeric"
    )
    with pytest.raises(AnalysisError, match="NU001") as excinfo:
        _executor(stream).execute(
            _query(), stream,
            _always_pass_cascade(poisoned),
            frame_indices=range(8),
            parallel=config,
        )
    assert "Conv2D" in str(excinfo.value)
    assert "chunk" in str(excinfo.value)


def test_non_strict_scan_collects_findings_and_warns(single_object_stream):
    stream = single_object_stream
    cascade = FilterCascade(
        steps=[
            CascadeStep(
                name="thread-dependent",
                frame_filter=_CheapFilter(_grid_for(stream)),
                check=lambda p: threading.current_thread().name.startswith(
                    "filter-worker"
                ),
            )
        ]
    )
    config = ParallelConfig(
        num_workers=2,
        backend="thread",
        chunk_size=8,
        sanitize="determinism",
        sanitize_strict=False,
    )
    with pytest.warns(UserWarning, match="RC004"):
        result = _executor(stream).execute(_query(), stream, cascade, parallel=config)
    report = result.stats.sanitizer_report
    assert report is not None and report.codes == ("RC004",)


# ----------------------------------------------------------------------
# Zero overhead when off: parity + uninstalled hooks
# ----------------------------------------------------------------------
def test_sanitize_none_keeps_parallel_parity_bit_identical(single_object_stream):
    stream = single_object_stream
    cascade = _always_pass_cascade(_CheapFilter(_grid_for(stream)))
    baseline = _executor(stream).execute(_query(), stream, cascade, batch_size=8)
    result = _executor(stream).execute(
        _query(), stream, copy.deepcopy(cascade),
        parallel=ParallelConfig(num_workers=2, backend="thread", chunk_size=8),
    )
    assert result.matched_frames == baseline.matched_frames
    assert (
        result.stats.simulated_cost.per_component_calls
        == baseline.stats.simulated_cost.per_component_calls
    )
    assert result.stats.simulated_cost.per_component_ms == pytest.approx(
        baseline.stats.simulated_cost.per_component_ms
    )
    assert result.stats.sanitizer_report is None


def test_hooks_stay_uninstalled_without_a_session():
    import importlib

    for module_name, attribute in HOOK_SITES:
        assert getattr(importlib.import_module(module_name), attribute) is None


def test_sanitized_scan_restores_hooks_even_on_error():
    import importlib

    with pytest.raises(RuntimeError, match="boom"):
        with sanitized_scan("race,numeric"):
            for module_name, attribute in HOOK_SITES:
                assert getattr(
                    importlib.import_module(module_name), attribute
                ) is not None
            raise RuntimeError("boom")
    for module_name, attribute in HOOK_SITES:
        assert getattr(importlib.import_module(module_name), attribute) is None
