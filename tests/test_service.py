"""Standing-query service: replay parity, churn, backpressure, budgets, soak.

The service's core promise is the *parity rail*: a finite stream replayed
chunk-by-chunk through :class:`~repro.service.QueryService` produces
bit-identical per-query results to one-shot ``execute_many`` on every engine
path (plain, windowed, temporal-exact, parallel) — because the chunk
pipeline is the executor's own, extracted into
:class:`~repro.query.session.ScanSession`.  On top of that the service adds
runtime membership churn, bounded ingestion with the three backpressure
policies, and per-query SLA budgets; each addition is tested here against
the behaviour the one-shot engine cannot express.
"""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro.cost import QueryBudget
from repro.detection import ReferenceDetector
from repro.query import (
    ParallelConfig,
    PlannerConfig,
    QueryBuilder,
    QueryPlanner,
    StreamingQueryExecutor,
    TemporalConfig,
    parse_query,
)
from repro.service import (
    BufferEmitter,
    IngestionQueue,
    QueryService,
    StreamConfig,
)

WINDOWED_TEXT = """
SELECT cameraID, frameID
FROM (PROCESS inputVideo PRODUCE cameraID, frameID, vehBox1 USING VehDetector)
WINDOW HOPPING (SIZE 20, ADVANCE BY 10)
WHERE COUNT(car) >= 1
"""

DETECTOR_SEED = 77


# ----------------------------------------------------------------------
# Fixtures and helpers
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def workload(trained_od_filter):
    """Three queries (plain / conjunctive / windowed) planned with one shared filter."""
    planner = QueryPlanner({"od": trained_od_filter}, PlannerConfig(count_tolerance=1))
    queries = [
        QueryBuilder("cars_eq1").count("car").equals(1).build(),
        QueryBuilder("car_and_person")
        .count("car").at_least(1)
        .count("person").at_least(1)
        .build(),
        parse_query(WINDOWED_TEXT, name="windowed_cars"),
    ]
    return queries, [planner.plan(query) for query in queries]


@pytest.fixture(scope="module")
def od_planner(trained_od_filter):
    return QueryPlanner({"od": trained_od_filter}, PlannerConfig(count_tolerance=1))


def _frames(stream, count=None):
    total = len(stream) if count is None else count
    return [stream.frame(index) for index in range(total)]


def _looped_frames(stream, total):
    """``total`` frames made by re-indexing the stream's frames cyclically."""
    base = _frames(stream)
    return [
        dataclasses.replace(base[index % len(base)], index=index)
        for index in range(total)
    ]


def _replay_through_service(
    queries,
    cascades,
    stream,
    class_names,
    *,
    chunk_size=16,
    feed_batch=7,
    temporal=None,
    parallel=None,
):
    """Feed ``stream`` through a fresh service; returns per-query results."""
    service = QueryService()
    service.attach_stream(
        "cam",
        ReferenceDetector(class_names=class_names, seed=DETECTOR_SEED),
        StreamConfig(chunk_size=chunk_size, temporal=temporal, parallel=parallel),
    )
    handles = [
        service.register("cam", query, cascade)
        for query, cascade in zip(queries, cascades)
    ]
    frames = _frames(stream)
    for start in range(0, len(frames), feed_batch):
        service.feed("cam", frames[start : start + feed_batch])
    results = service.close()
    return [results[handle] for handle in handles]


def _one_shot(queries, cascades, stream, class_names, **kwargs):
    executor = StreamingQueryExecutor(
        ReferenceDetector(class_names=class_names, seed=DETECTOR_SEED)
    )
    return executor.execute_many(queries, stream, cascades, **kwargs)


def _assert_result_parity(service_result, oneshot_result):
    assert service_result.query_name == oneshot_result.query_name
    assert service_result.matched_frames == oneshot_result.matched_frames
    assert service_result.stats.frames_scanned == oneshot_result.stats.frames_scanned
    assert (
        service_result.stats.frames_passed_filters
        == oneshot_result.stats.frames_passed_filters
    )
    assert (
        service_result.stats.detector_invocations
        == oneshot_result.stats.detector_invocations
    )
    assert (
        service_result.stats.filter_invocations
        == oneshot_result.stats.filter_invocations
    )
    assert (
        service_result.stats.simulated_cost.per_component_calls
        == oneshot_result.stats.simulated_cost.per_component_calls
    )
    assert service_result.stats.simulated_cost.total_ms == pytest.approx(
        oneshot_result.stats.simulated_cost.total_ms
    )
    if oneshot_result.windows is None:
        assert service_result.windows is None
    else:
        assert service_result.windows is not None
        assert [
            (w.bounds, w.matched_frames, w.stats) for w in service_result.windows
        ] == [(w.bounds, w.matched_frames, w.stats) for w in oneshot_result.windows]


class _SlowDetector(ReferenceDetector):
    """A reference detector with real wall-clock latency (overload injection)."""

    def __init__(self, *args, delay_seconds=0.004, **kwargs):
        super().__init__(*args, **kwargs)
        self._delay_seconds = delay_seconds

    def detect(self, frame):
        time.sleep(self._delay_seconds)
        return super().detect(frame)


# ----------------------------------------------------------------------
# The parity rail: service replay == one-shot execute_many, on every path
# ----------------------------------------------------------------------
def test_replay_parity_plain_and_windowed(workload, tiny_jackson):
    queries, cascades = workload
    via_service = _replay_through_service(
        queries, cascades, tiny_jackson.test, tiny_jackson.class_names
    )
    one_shot = _one_shot(
        queries, cascades, tiny_jackson.test, tiny_jackson.class_names, batch_size=16
    )
    for service_result, oneshot_result in zip(via_service, one_shot):
        _assert_result_parity(service_result, oneshot_result)


def test_replay_parity_is_chunking_invariant(workload, tiny_jackson):
    """Arbitrary feed batching and scan chunking produce identical results."""
    queries, cascades = workload
    baseline = _one_shot(
        queries, cascades, tiny_jackson.test, tiny_jackson.class_names, batch_size=16
    )
    for chunk_size, feed_batch in ((5, 3), (16, 50), (50, 1)):
        via_service = _replay_through_service(
            queries,
            cascades,
            tiny_jackson.test,
            tiny_jackson.class_names,
            chunk_size=chunk_size,
            feed_batch=feed_batch,
        )
        for service_result, oneshot_result in zip(via_service, baseline):
            _assert_result_parity(service_result, oneshot_result)


def test_replay_parity_temporal_exact(workload, tiny_jackson):
    queries, cascades = workload
    temporal = TemporalConfig(exact=True)
    via_service = _replay_through_service(
        queries,
        cascades,
        tiny_jackson.test,
        tiny_jackson.class_names,
        temporal=temporal,
    )
    one_shot = _one_shot(
        queries,
        cascades,
        tiny_jackson.test,
        tiny_jackson.class_names,
        temporal=temporal,
    )
    for service_result, oneshot_result in zip(via_service, one_shot):
        _assert_result_parity(service_result, oneshot_result)
        # execute_many reports temporal telemetry on the shared scan; the
        # service stamps the same session-wide stats onto each result.
        assert service_result.temporal == one_shot.shared.temporal


def test_replay_parity_parallel(workload, tiny_jackson):
    queries, cascades = workload
    parallel = ParallelConfig(num_workers=2, backend="thread", chunk_size=16)
    via_service = _replay_through_service(
        queries,
        cascades,
        tiny_jackson.test,
        tiny_jackson.class_names,
        parallel=parallel,
    )
    one_shot = _one_shot(
        queries,
        cascades,
        tiny_jackson.test,
        tiny_jackson.class_names,
        parallel=parallel,
    )
    for service_result, oneshot_result in zip(via_service, one_shot):
        _assert_result_parity(service_result, oneshot_result)


# ----------------------------------------------------------------------
# Registry churn
# ----------------------------------------------------------------------
def test_churn_dedup_set_tracks_membership(od_planner, tiny_jackson):
    """The shared-step dedup set grows and shrinks with register/deregister."""
    build = lambda name: QueryBuilder(name).count("car").equals(1).build()  # noqa: E731
    service = QueryService()
    service.attach_stream(
        "cam",
        ReferenceDetector(class_names=tiny_jackson.class_names, seed=DETECTOR_SEED),
        StreamConfig(chunk_size=10),
    )
    first = service.register("cam", (q := build("first")), od_planner.plan(q))
    stats = service.stats().streams["cam"]
    solo_steps = stats.total_steps
    assert stats.unique_steps == solo_steps

    # A semantically identical query dedups completely: total doubles,
    # unique stays put.
    second = service.register("cam", (q := build("second")), od_planner.plan(q))
    stats = service.stats().streams["cam"]
    assert stats.total_steps == 2 * solo_steps
    assert stats.unique_steps == solo_steps

    frames = _frames(tiny_jackson.test)
    service.feed("cam", frames[:20])
    service.deregister(second)
    stats = service.stats().streams["cam"]
    assert stats.total_steps == solo_steps
    assert stats.unique_steps == solo_steps
    service.feed("cam", frames[20:40])
    results = service.close()
    assert first in results and second not in results


def test_churn_windows_never_reemitted_and_attribution_consistent(
    workload, od_planner, tiny_jackson
):
    queries, cascades = workload
    windowed, windowed_cascade = queries[2], cascades[2]
    buffer = BufferEmitter()
    service = QueryService(emitters=[buffer])
    service.attach_stream(
        "cam",
        ReferenceDetector(class_names=tiny_jackson.class_names, seed=DETECTOR_SEED),
        StreamConfig(chunk_size=10),
    )
    handle = service.register("cam", windowed, windowed_cascade)
    frames = _frames(tiny_jackson.test)

    service.feed("cam", frames[:25])
    # Mid-stream churn around the windowed query.
    extra_query = QueryBuilder("late_joiner").count("car").at_least(1).build()
    extra = service.register("cam", extra_query, od_planner.plan(extra_query))
    service.feed("cam", frames[25:40])
    report = service.shared_cost_report("cam")
    late_result = service.deregister(extra)
    service.feed("cam", frames[40:])
    results = service.close()

    # The late joiner only ever saw frames from its registration point on.
    assert late_result.stats.frames_scanned == 40 - 25
    assert all(index >= 25 for index in late_result.matched_frames)

    # Windows: emitted incrementally, exactly once, in order, and identical
    # to the final result's windows.
    emitted = buffer.windows(handle)
    bounds = [window.bounds for window in emitted]
    assert bounds == sorted(bounds, key=lambda b: b.start)
    assert len(set(bounds)) == len(bounds)
    assert [
        (w.bounds, w.matched_frames) for w in results[handle].windows
    ] == [(w.bounds, w.matched_frames) for w in emitted]
    # Hopping SIZE 20 ADVANCE 10 over 50 frames, include_partial default.
    assert [b.start for b in bounds] == [0, 10, 20, 30, 40]

    # Attribution stayed consistent across the membership change: every
    # registered query is attributed, and sharing never costs more than
    # standalone execution.
    assert set(report.attributed) == {"windowed_cars", "late_joiner"}
    assert report.shared_ms <= report.standalone_ms + 1e-9
    assert report.savings_ratio >= 1.0


# ----------------------------------------------------------------------
# Backpressure
# ----------------------------------------------------------------------
def test_block_policy_bounds_queue_depth(od_planner, tiny_jackson):
    query = QueryBuilder("cars").count("car").at_least(1).build()
    service = QueryService()
    service.attach_stream(
        "cam",
        _SlowDetector(
            class_names=tiny_jackson.class_names, seed=DETECTOR_SEED,
            delay_seconds=0.001,
        ),
        StreamConfig(chunk_size=4, queue_chunks=3, policy="block"),
    )
    service.register("cam", query, od_planner.plan(query))
    service.start()
    frames = _looped_frames(tiny_jackson.test, 120)
    for start in range(0, len(frames), 4):
        service.feed("cam", frames[start : start + 4])
    service.stop(drain=True)
    stats = service.stats().streams["cam"]
    assert stats.queue_high_water <= 3
    assert stats.chunks_processed == stats.chunks_ingested == 30
    assert stats.queue_depth == 0
    assert stats.dropped_chunks == 0
    assert stats.watermark == 119
    service.close()


def test_drop_oldest_policy_sheds_load(od_planner, tiny_jackson):
    query = QueryBuilder("cars").count("car").at_least(1).build()
    service = QueryService()
    service.attach_stream(
        "cam",
        _SlowDetector(class_names=tiny_jackson.class_names, seed=DETECTOR_SEED),
        StreamConfig(chunk_size=4, queue_chunks=2, policy="drop_oldest"),
    )
    service.register("cam", query, od_planner.plan(query))
    service.start()
    frames = _looped_frames(tiny_jackson.test, 160)
    for start in range(0, len(frames), 4):
        service.feed("cam", frames[start : start + 4])
    service.stop(drain=True)
    stats = service.stats().streams["cam"]
    assert stats.dropped_chunks > 0
    assert stats.chunks_processed == stats.chunks_ingested - stats.dropped_chunks
    assert stats.queue_high_water <= 2
    service.close()


def test_degrade_policy_flips_to_approximate_and_records_it(tiny_jackson):
    # An empty cascade sends every frame to the (slow) detector, so the
    # producer certainly outruns the consumer and forces the degraded mode.
    query = QueryBuilder("everything").count("car").at_least(0).build()
    service = QueryService()
    service.attach_stream(
        "cam",
        _SlowDetector(class_names=tiny_jackson.class_names, seed=DETECTOR_SEED),
        StreamConfig(chunk_size=4, queue_chunks=2, policy="degrade"),
    )
    handle = service.register("cam", query)
    service.start()
    frames = _looped_frames(tiny_jackson.test, 120)
    for start in range(0, len(frames), 4):
        service.feed("cam", frames[start : start + 4])
    service.stop(drain=True)
    stats = service.stats().streams["cam"]
    assert stats.degrade_events >= 1
    assert stats.degraded_chunks >= 1
    assert stats.degraded_frames > 0
    assert stats.dropped_chunks == 0  # degrade trades accuracy, not frames
    results = service.close()
    # Degraded execution is recorded on the result's temporal stats.
    temporal = results[handle].temporal
    assert temporal is not None
    assert temporal.frames_reused > 0


# ----------------------------------------------------------------------
# Budgets
# ----------------------------------------------------------------------
def test_budget_violations_are_edge_triggered_and_emitted(od_planner, tiny_jackson):
    query = QueryBuilder("cars").count("car").at_least(1).build()
    buffer = BufferEmitter()
    service = QueryService(emitters=[buffer])
    service.attach_stream(
        "cam",
        ReferenceDetector(class_names=tiny_jackson.class_names, seed=DETECTOR_SEED),
        StreamConfig(chunk_size=10),
    )
    handle = service.register(
        "cam",
        query,
        od_planner.plan(query),
        budget=QueryBudget(
            max_simulated_ms_total=0.5,
            min_frames_per_second=1e12,
        ),
    )
    frames = _frames(tiny_jackson.test)
    for start in range(0, len(frames), 10):
        service.feed("cam", frames[start : start + 10])
    stats = service.stats().streams["cam"]
    kinds = [violation.kind for violation in stats.violations]
    # Both ceilings fired exactly once despite five chunks (edge-triggered).
    assert sorted(kinds) == ["throughput", "total_cost"]
    emissions = buffer.emissions(kind="violation", handle=handle)
    assert {e.violation.kind for e in emissions} == {"throughput", "total_cost"}
    service.close()


# ----------------------------------------------------------------------
# Ingestion queue unit behaviour
# ----------------------------------------------------------------------
def test_ingestion_queue_policies():
    queue = IngestionQueue(maxsize=2, policy="drop_oldest")
    for chunk in ([1], [2], [3]):
        assert queue.put(chunk)
    assert queue.dropped_chunks == 1
    assert queue.get() == [2]

    degrading = IngestionQueue(maxsize=2, policy="degrade")
    for chunk in ([1], [2], [3]):
        assert degrading.put(chunk)
    assert degrading.degrade_requested
    assert degrading.degrade_events == 1
    # Hysteresis: the request clears at half capacity, not at first dequeue.
    assert degrading.get() == [1]
    assert degrading.degrade_requested
    assert degrading.get() == [2]
    assert not degrading.degrade_requested
    degrading.close()
    assert degrading.get() == [3]
    assert degrading.get() is None
    assert not degrading.put([4])

    with pytest.raises(ValueError):
        IngestionQueue(maxsize=0)
    with pytest.raises(ValueError):
        IngestionQueue(maxsize=1, policy="explode")


# ----------------------------------------------------------------------
# Soak smoke: 8 standing queries, 2 stream workers, bounded queues
# ----------------------------------------------------------------------
def test_soak_eight_standing_queries_two_workers(od_planner, tiny_jackson):
    total_frames = 240
    service = QueryService()
    for name in ("north", "south"):
        service.attach_stream(
            name,
            ReferenceDetector(class_names=tiny_jackson.class_names, seed=DETECTOR_SEED),
            StreamConfig(chunk_size=8, queue_chunks=4, policy="block"),
        )
    handles: dict[str, list[int]] = {"north": [], "south": []}
    for name in handles:
        for position in range(4):
            query = (
                QueryBuilder(f"{name}_q{position}")
                .count("car").at_least(1 + position % 2)
                .build()
            )
            handles[name].append(service.register(name, query, od_planner.plan(query)))
    assert service.stats().active_queries == 8

    service.start()
    frames = _looped_frames(tiny_jackson.test, total_frames)
    for start in range(0, total_frames, 24):
        batch = frames[start : start + 24]
        for name in handles:
            service.feed(name, batch)
    service.stop(drain=True)

    for name in handles:
        stats = service.stats().streams[name]
        assert stats.queue_high_water <= 4  # bounded under block
        assert stats.queue_depth == 0
        assert stats.chunks_processed == stats.chunks_ingested == total_frames // 8
        assert stats.frames_ingested == total_frames
        assert stats.watermark == total_frames - 1
        assert stats.active_queries == 4

    results = service.close()
    assert len(results) == 8
    for name in handles:
        for handle in handles[name]:
            # Accumulators stayed bounded by coverage: every query scanned
            # each frame exactly once (stable-memory proxy).
            assert results[handle].stats.frames_scanned == total_frames
