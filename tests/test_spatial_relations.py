"""Tests for directional relations, regions and constraint combinators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.spatial.constraints import DirectionalConstraint, RegionConstraint
from repro.spatial.geometry import Box, Point
from repro.spatial.grid import Grid, GridMask
from repro.spatial.regions import Quadrant, Region, full_frame_region, quadrant_region
from repro.spatial.relations import (
    Direction,
    direction_between,
    evaluate_direction,
    evaluate_direction_on_grid,
    grid_masks_satisfy_direction,
    inside_region,
)


def test_direction_inverse_and_keywords():
    assert Direction.LEFT_OF.inverse is Direction.RIGHT_OF
    assert Direction.ABOVE.inverse is Direction.BELOW
    # ORDER(a, b) = RIGHT means "b is at the right of a" i.e. a LEFT_OF b.
    assert Direction.from_keyword("RIGHT") is Direction.LEFT_OF
    assert Direction.from_keyword("left") is Direction.RIGHT_OF
    assert Direction.from_keyword("Above") is Direction.BELOW
    with pytest.raises(ValueError):
        Direction.from_keyword("diagonal")


def test_evaluate_direction_on_boxes():
    left = Box.from_center(10, 50, 10, 10)
    right = Box.from_center(60, 50, 10, 10)
    assert evaluate_direction(left, right, Direction.LEFT_OF).satisfied
    assert not evaluate_direction(left, right, Direction.RIGHT_OF).satisfied
    assert evaluate_direction(right, left, Direction.RIGHT_OF).satisfied
    above = Box.from_center(50, 10, 10, 10)
    below = Box.from_center(50, 90, 10, 10)
    assert evaluate_direction(above, below, Direction.ABOVE).satisfied
    assert evaluate_direction(below, above, Direction.BELOW).satisfied
    # Margin excludes near-ties.
    assert not evaluate_direction(left, right, Direction.LEFT_OF, margin=100).satisfied
    with pytest.raises(ValueError):
        evaluate_direction(left, right, Direction.LEFT_OF, margin=-1)


def test_direction_between_points():
    directions = direction_between(Point(0, 0), Point(10, 10))
    assert Direction.LEFT_OF in directions
    assert Direction.ABOVE in directions
    assert Direction.RIGHT_OF not in directions


def _mask_with(grid: Grid, cells) -> GridMask:
    values = np.zeros(grid.shape, dtype=bool)
    for r, c in cells:
        values[r, c] = True
    return GridMask(grid=grid, values=values)


def test_grid_direction_checks():
    grid = Grid(rows=10, cols=10, frame_width=100, frame_height=100)
    left_mask = _mask_with(grid, [(5, 1), (5, 2)])
    right_mask = _mask_with(grid, [(5, 8)])
    assert evaluate_direction_on_grid(left_mask, right_mask, Direction.LEFT_OF).satisfied
    assert grid_masks_satisfy_direction(left_mask, right_mask, Direction.LEFT_OF)
    assert not grid_masks_satisfy_direction(left_mask, right_mask, Direction.RIGHT_OF)
    empty = grid.empty_mask()
    assert not evaluate_direction_on_grid(left_mask, empty, Direction.LEFT_OF).satisfied
    assert not grid_masks_satisfy_direction(empty, right_mask, Direction.LEFT_OF)


def test_grid_direction_checks_reject_incompatible_grids():
    """Masks on different grids must raise, not silently compare coordinates."""
    grid = Grid(rows=10, cols=10, frame_width=100, frame_height=100)
    coarse = Grid(rows=5, cols=5, frame_width=100, frame_height=100)
    same_shape_other_frame = Grid(rows=10, cols=10, frame_width=200, frame_height=100)
    mask = _mask_with(grid, [(5, 1)])
    for other_grid in (coarse, same_shape_other_frame):
        other = _mask_with(other_grid, [(1, 4)])
        with pytest.raises(ValueError):
            evaluate_direction_on_grid(mask, other, Direction.LEFT_OF)
        with pytest.raises(ValueError):
            grid_masks_satisfy_direction(mask, other, Direction.LEFT_OF)


@given(
    st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)), min_size=0, max_size=8),
    st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)), min_size=0, max_size=8),
    st.sampled_from(list(Direction)),
    st.floats(0.0, 3.0),
)
def test_extremal_direction_check_matches_pairwise_loop(cells_a, cells_b, direction, margin):
    """The extremal-cell check must agree with comparing every cell pair."""
    grid = Grid(rows=8, cols=8, frame_width=96, frame_height=64)
    mask_a = _mask_with(grid, cells_a)
    mask_b = _mask_with(grid, cells_b)
    cell_extent = (
        grid.cell_width
        if direction in (Direction.LEFT_OF, Direction.RIGHT_OF)
        else grid.cell_height
    )
    expected = any(
        evaluate_direction(
            grid.cell_center(ra, ca),
            grid.cell_center(rb, cb),
            direction,
            margin=margin * cell_extent,
        ).satisfied
        for ra, ca in mask_a.occupied_cells()
        for rb, cb in mask_b.occupied_cells()
    )
    assert grid_masks_satisfy_direction(mask_a, mask_b, direction, margin_cells=margin) == expected


def test_quadrants_partition_the_frame():
    regions = [quadrant_region(q, 100, 100) for q in Quadrant]
    assert sum(r.box.area for r in regions) == pytest.approx(100 * 100)
    point = Point(25, 75)
    containing = [r for r in regions if r.contains_point(point)]
    assert len(containing) == 1
    assert containing[0].name == Quadrant.LOWER_LEFT.value
    frame = full_frame_region(100, 100)
    assert frame.contains_point(point)


def test_quadrants_tile_frame_boundary_inclusively():
    """A point exactly on the bottom/right frame edge falls in exactly one quadrant.

    Boxes are max-exclusive, so without the regions' inclusive frame edges a
    detection centered on the frame boundary would fall in *no* quadrant and
    outside the full-frame region.
    """
    width, height = 100, 80
    regions = [quadrant_region(q, width, height) for q in Quadrant]
    frame = full_frame_region(width, height)
    boundary_cases = {
        Point(width, height): Quadrant.LOWER_RIGHT,
        Point(width, 0): Quadrant.UPPER_RIGHT,
        Point(0, height): Quadrant.LOWER_LEFT,
        Point(width, height / 2): Quadrant.LOWER_RIGHT,
        Point(width / 2, height): Quadrant.LOWER_RIGHT,
        Point(0, 0): Quadrant.UPPER_LEFT,
    }
    for point, expected in boundary_cases.items():
        assert frame.contains_point(point), point
        containing = [r for r in regions if r.contains_point(point)]
        assert len(containing) == 1, (point, [r.name for r in containing])
        assert containing[0].name == expected.value
    # Interior edges stay max-exclusive: the midlines belong to the
    # right/lower quadrants only, and points outside the frame stay outside.
    midpoint = Point(width / 2, height / 2)
    assert [r.name for r in regions if r.contains_point(midpoint)] == [
        Quadrant.LOWER_RIGHT.value
    ]
    assert not frame.contains_point(Point(width + 1, height))
    assert not frame.contains_point(Point(-1, 0))


def test_region_containment_modes():
    region = Region("zone", Box(0, 0, 50, 50))
    box = Box(35, 35, 55, 55)
    assert region.contains_box(box, mode="center") is True
    assert region.contains_box(box, mode="full") is False
    assert region.contains_box(box, mode="overlap") is True
    with pytest.raises(ValueError):
        region.contains_box(box, mode="weird")
    assert inside_region(Point(10, 10), region)
    assert not inside_region(Point(90, 90), region)


def test_region_grid_mask():
    grid = Grid(rows=4, cols=4, frame_width=40, frame_height=40)
    region = quadrant_region(Quadrant.UPPER_LEFT, 40, 40)
    mask = region.grid_mask(grid)
    assert mask.count == 4
    assert set(mask.occupied_cells()) == {(0, 0), (0, 1), (1, 0), (1, 1)}


def _loop_grid_mask(region, grid):
    """The original per-cell double loop, kept as the reference semantics."""
    values = grid.empty_mask().values
    for row in range(grid.rows):
        for col in range(grid.cols):
            if region.contains_point(grid.cell_center(row, col)):
                values[row, col] = True
    return values


def test_region_grid_mask_matches_per_cell_loop():
    """The vectorized grid_mask equals the cell-center loop on a 56x56 grid."""
    import numpy as np

    grid = Grid(rows=56, cols=56, frame_width=448, frame_height=448)
    regions = [quadrant_region(q, 448, 448) for q in Quadrant]
    regions.append(full_frame_region(448, 448))
    regions.append(Region("offgrid", Box(13.5, 70.2, 200.0, 448.0)))
    regions.append(Region("sliver", Box(0, 443, 448, 448), inclusive_y_max=True))
    for region in regions:
        vectorized = region.grid_mask(grid).values
        assert np.array_equal(vectorized, _loop_grid_mask(region, grid)), region.name
    # The quadrant masks tile the grid exactly.
    total = sum(region.grid_mask(grid).count for region in regions[:4])
    assert total == 56 * 56


@pytest.mark.parametrize(
    "rows,cols,width,height",
    [(5, 5, 448, 448), (11, 11, 1920, 1080), (7, 9, 100, 100)],
)
def test_region_grid_mask_loop_parity_on_non_dyadic_cells(rows, cols, width, height):
    """Cell sizes that are not exactly representable must not flip boundary cells.

    ``(col + 0.5) * cell_width`` and ``Grid.cell_center``'s
    ``(edge + next_edge) / 2`` differ in the last ulp for these geometries;
    a cell whose center lies exactly on a quadrant midline would land on
    different sides under the two expressions.
    """
    import numpy as np

    grid = Grid(rows=rows, cols=cols, frame_width=width, frame_height=height)
    quadrants = [quadrant_region(q, width, height) for q in Quadrant]
    for region in quadrants:
        vectorized = region.grid_mask(grid).values
        assert np.array_equal(vectorized, _loop_grid_mask(region, grid)), (
            region.name,
            rows,
            width,
        )
    # Quadrants still tile the grid: every cell center in exactly one mask.
    total = np.zeros((rows, cols), dtype=int)
    for region in quadrants:
        total += region.grid_mask(grid).values.astype(int)
    assert np.array_equal(total, np.ones_like(total))


def test_constraint_combinators():
    grid = Grid(rows=10, cols=10, frame_width=100, frame_height=100)
    binding = {
        "car": Box.from_center(20, 40, 10, 10),
        "bus": Box.from_center(80, 50, 20, 10),
    }
    left = DirectionalConstraint("car", "bus", Direction.LEFT_OF)
    right = DirectionalConstraint("car", "bus", Direction.RIGHT_OF)
    region = RegionConstraint("car", quadrant_region(Quadrant.UPPER_LEFT, 100, 100))
    assert left.evaluate(binding)
    assert not right.evaluate(binding)
    assert (left & region).evaluate(binding)
    assert (left | right).evaluate(binding)
    assert (~right).evaluate(binding)
    assert not left.evaluate({"car": binding["car"]})  # missing variable
    assert left.variables() == frozenset({"car", "bus"})
    # Grid-mask bindings go through the grid evaluation path.
    grid_binding = {
        "car": grid.mask_from_boxes([binding["car"]]),
        "bus": grid.mask_from_boxes([binding["bus"]]),
    }
    assert left.evaluate(grid_binding)
    with pytest.raises(TypeError):
        left.evaluate({"car": binding["car"], "bus": grid_binding["bus"]})


@given(
    st.floats(5, 95), st.floats(5, 95), st.floats(5, 95), st.floats(5, 95)
)
def test_direction_antisymmetry(ax, ay, bx, by):
    a = Point(ax, ay)
    b = Point(bx, by)
    for direction in Direction:
        forward = evaluate_direction(a, b, direction).satisfied
        backward = evaluate_direction(b, a, direction.inverse).satisfied
        assert forward == backward
