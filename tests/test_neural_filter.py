"""Tests for the CNN branch-network filter (the repro.nn-based implementation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection import ReferenceDetector, annotate_stream
from repro.filters import NeuralTrainingConfig, build_branch_network, train_neural_filter


def test_branch_network_output_shapes():
    network = build_branch_network(num_classes=2, image_size=32, grid_size=8, base_channels=4)
    x = np.random.default_rng(0).normal(size=(3, 3, 32, 32))
    outputs = network.forward(x)
    assert outputs["counts"].shape == (3, 2)
    assert outputs["grid"].shape == (3, 2, 8, 8)
    assert np.all(outputs["counts"] >= 0)  # ReLU count head
    assert np.all((outputs["grid"] >= 0) & (outputs["grid"] <= 1))  # sigmoid grid head
    with pytest.raises(ValueError):
        build_branch_network(num_classes=2, image_size=30, grid_size=8)


def test_neural_training_config_validation():
    with pytest.raises(ValueError):
        NeuralTrainingConfig(image_size=50, grid_size=8)
    with pytest.raises(ValueError):
        NeuralTrainingConfig(epochs=0)


@pytest.mark.slow
def test_neural_filter_end_to_end(tiny_jackson):
    detector = ReferenceDetector(class_names=tiny_jackson.class_names, seed=0)
    grid = tiny_jackson.grid(56)
    annotations = annotate_stream(
        tiny_jackson.train,
        detector,
        tiny_jackson.class_names,
        grid,
        frame_indices=range(0, 60, 2),
    )
    config = NeuralTrainingConfig(
        image_size=32, grid_size=8, epochs=3, warmup_epochs=1, batch_size=8, base_channels=4
    )
    neural = train_neural_filter(
        tiny_jackson.train, annotations, tiny_jackson.class_names, config=config
    )
    prediction = neural.predict(tiny_jackson.test.frame(0))
    assert prediction.grid.shape == (8, 8)
    assert set(prediction.class_counts) == set(tiny_jackson.class_names)
    # The trained network should at least track the total count loosely on
    # the frames it was trained on (sanity that learning happened at all).
    errors = []
    for annotated in list(annotations)[:10]:
        frame = tiny_jackson.train.frame(annotated.frame_index)
        errors.append(abs(neural.predict(frame).total_count - annotated.total_count))
    assert np.mean(errors) < 2.5
