"""Tests for the CNN branch-network filter (the repro.nn-based implementation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection import ReferenceDetector, annotate_stream
from repro.filters import NeuralTrainingConfig, build_branch_network, train_neural_filter
from repro.filters.neural import NeuralBranchFilter
from repro.video.stream import Frame


def _neural_filter(image_size=32, grid_size=8, frame_width=64, frame_height=32):
    network = build_branch_network(
        num_classes=2, image_size=image_size, grid_size=grid_size, base_channels=4
    )
    return NeuralBranchFilter(
        network=network,
        class_names=("car", "person"),
        image_size=image_size,
        grid_size=grid_size,
        frame_width=frame_width,
        frame_height=frame_height,
    )


def _frame(index: int, height: int, width: int, seed: int = 0) -> Frame:
    rng = np.random.default_rng((seed, index))
    image = rng.integers(0, 256, size=(height, width, 3), dtype=np.uint8)
    return Frame(index=index, image=image, ground_truth=None)


def test_prepare_input_handles_rectangular_frames():
    """Regression: width used to be indexed with height-derived indices, so
    any ``width != height`` frame either raised or sampled wrong columns."""
    neural = _neural_filter(image_size=32)
    # Both axes divisible: 32x64 -> per-axis block means.
    image = np.zeros((32, 64, 3), dtype=np.uint8)
    image[:, 32:, :] = 255  # right half white
    prepared = neural._prepare_input(image)
    assert prepared.shape == (1, 3, 32, 32)
    np.testing.assert_allclose(prepared[0, :, :, :16], 0.0)
    np.testing.assert_allclose(prepared[0, :, :, 16:], 1.0)
    # Non-divisible axes fall back to per-axis nearest-neighbour sampling.
    ragged = neural._prepare_input(np.zeros((48, 36, 3), dtype=np.uint8))
    assert ragged.shape == (1, 3, 32, 32)
    # End-to-end predict on a rectangular frame.
    prediction = neural.predict(_frame(0, height=32, width=64))
    assert set(prediction.class_counts) == {"car", "person"}


def test_neural_predict_batch_matches_predict():
    neural = _neural_filter(image_size=32, frame_width=32, frame_height=32)
    frames = [_frame(index, height=32, width=32) for index in range(5)]
    sequential = [neural.predict(frame) for frame in frames]
    batched = neural.predict_batch(frames)
    assert len(batched) == len(frames)
    assert batched.frame_indices == tuple(range(5))
    for seq, bat in zip(sequential, batched):
        assert seq.class_counts == bat.class_counts
        for name in seq.class_scores:
            assert bat.class_scores[name] == pytest.approx(seq.class_scores[name], abs=1e-9)
        for name in seq.location_scores:
            np.testing.assert_allclose(
                bat.location_scores[name], seq.location_scores[name], atol=1e-9
            )


def test_branch_network_output_shapes():
    network = build_branch_network(num_classes=2, image_size=32, grid_size=8, base_channels=4)
    x = np.random.default_rng(0).normal(size=(3, 3, 32, 32))
    outputs = network.forward(x)
    assert outputs["counts"].shape == (3, 2)
    assert outputs["grid"].shape == (3, 2, 8, 8)
    assert np.all(outputs["counts"] >= 0)  # ReLU count head
    assert np.all((outputs["grid"] >= 0) & (outputs["grid"] <= 1))  # sigmoid grid head
    with pytest.raises(ValueError):
        build_branch_network(num_classes=2, image_size=30, grid_size=8)


def test_neural_training_config_validation():
    with pytest.raises(ValueError):
        NeuralTrainingConfig(image_size=50, grid_size=8)
    with pytest.raises(ValueError):
        NeuralTrainingConfig(epochs=0)


@pytest.mark.slow
def test_neural_filter_end_to_end(tiny_jackson):
    detector = ReferenceDetector(class_names=tiny_jackson.class_names, seed=0)
    grid = tiny_jackson.grid(56)
    annotations = annotate_stream(
        tiny_jackson.train,
        detector,
        tiny_jackson.class_names,
        grid,
        frame_indices=range(0, 60, 2),
    )
    config = NeuralTrainingConfig(
        image_size=32, grid_size=8, epochs=3, warmup_epochs=1, batch_size=8, base_channels=4
    )
    neural = train_neural_filter(
        tiny_jackson.train, annotations, tiny_jackson.class_names, config=config
    )
    prediction = neural.predict(tiny_jackson.test.frame(0))
    assert prediction.grid.shape == (8, 8)
    assert set(prediction.class_counts) == set(tiny_jackson.class_names)
    # The trained network should at least track the total count loosely on
    # the frames it was trained on (sanity that learning happened at all).
    errors = []
    for annotated in list(annotations)[:10]:
        frame = tiny_jackson.train.frame(annotated.frame_index)
        errors.append(abs(neural.predict(frame).total_count - annotated.total_count))
    assert np.mean(errors) < 2.5
