"""Tests for the estimation heads (ridge accumulator, grid scorer, count calibration)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.filters.heads import (
    COUNT_FEATURE_NAMES,
    CountCalibration,
    GridScoringHead,
    PooledCountHead,
    RidgeAccumulator,
    count_features,
    suppress_cross_class,
    thresholded_sum,
)


def test_ridge_accumulator_recovers_linear_model(rng):
    true_weights = np.array([[2.0], [-1.0], [0.5]])
    x = rng.normal(size=(200, 3))
    y = x @ true_weights + 3.0
    accumulator = RidgeAccumulator(num_features=3, num_outputs=1, alpha=1e-8)
    for start in range(0, 200, 50):
        accumulator.add_batch(x[start : start + 50], y[start : start + 50])
    weights, bias = accumulator.solve()
    np.testing.assert_allclose(weights, true_weights, atol=1e-6)
    assert bias[0] == pytest.approx(3.0, abs=1e-6)
    assert accumulator.num_samples == 200


def test_ridge_accumulator_sample_weights(rng):
    # Heavily weighting a subset makes the fit follow that subset.
    x = np.concatenate([np.full((50, 1), 1.0), np.full((50, 1), 2.0)])
    y = np.concatenate([np.full(50, 10.0), np.full(50, 0.0)])
    unweighted = RidgeAccumulator(num_features=1, alpha=1e-9)
    unweighted.add_batch(x, y)
    weighted = RidgeAccumulator(num_features=1, alpha=1e-9)
    weights = np.concatenate([np.full(50, 100.0), np.full(50, 1.0)])
    weighted.add_batch(x, y, weights)
    _, bias_unweighted = unweighted.solve()
    w_weighted, bias_weighted = weighted.solve()
    pred_at_1_unweighted = 1.0 * unweighted.solve()[0][0, 0] + bias_unweighted[0]
    pred_at_1_weighted = 1.0 * w_weighted[0, 0] + bias_weighted[0]
    assert abs(pred_at_1_weighted - 10.0) < abs(pred_at_1_unweighted - 10.0)
    with pytest.raises(ValueError):
        weighted.add_batch(x, y, np.full(10, 1.0))
    with pytest.raises(ValueError):
        weighted.add_batch(x, y, -weights)


def test_ridge_accumulator_validation():
    accumulator = RidgeAccumulator(num_features=2)
    with pytest.raises(RuntimeError):
        accumulator.solve()
    with pytest.raises(ValueError):
        accumulator.add_batch(np.zeros((3, 5)), np.zeros(3))
    with pytest.raises(ValueError):
        RidgeAccumulator(num_features=0)


def test_grid_scoring_head_shapes_and_clipping():
    head = GridScoringHead(
        class_names=("car", "bus"),
        weights=np.array([[10.0, 0.0], [0.0, -10.0]]),
        bias=np.array([0.0, 0.5]),
    )
    features = np.zeros((4, 4, 2))
    features[0, 0, 0] = 1.0  # strong car feature
    features[1, 1, 1] = 1.0  # strong anti-bus feature
    scores = head.score(features)
    assert set(scores) == {"car", "bus"}
    assert scores["car"].shape == (4, 4)
    assert scores["car"][0, 0] == 1.0  # clipped to [0, 1]
    assert scores["bus"][1, 1] == 0.0
    with pytest.raises(ValueError):
        head.score(np.zeros((4, 4, 3)))
    with pytest.raises(ValueError):
        GridScoringHead(class_names=("car",), weights=np.zeros((2, 3)), bias=np.zeros(2))


def test_thresholded_sum_and_count_features():
    scores = np.zeros((8, 8))
    scores[0, 0] = 0.9
    scores[0, 1] = 0.8
    scores[5, 5] = 0.7
    scores[7, 7] = 0.1  # below threshold
    assert thresholded_sum(scores, 0.2) == pytest.approx(2.4)
    features = count_features(scores, 0.2)
    assert features.shape == (len(COUNT_FEATURE_NAMES),)
    assert features[0] == pytest.approx(2.4)  # score mass
    assert features[1] == 3  # occupied cells
    assert features[2] == 2  # two connected blobs
    assert np.all(count_features(np.zeros((4, 4)), 0.2) == 0)


def test_suppress_cross_class():
    car = np.array([[0.9, 0.1], [0.3, 0.0]])
    bus = np.array([[0.4, 0.3], [0.6, 0.0]])
    suppressed = suppress_cross_class({"car": car, "bus": bus}, threshold=0.2)
    # Cell (0,0): car wins, bus zeroed; cell (1,0): bus wins, car zeroed.
    assert suppressed["car"][0, 0] == pytest.approx(0.9)
    assert suppressed["bus"][0, 0] == 0.0
    assert suppressed["car"][1, 0] == 0.0
    assert suppressed["bus"][1, 0] == pytest.approx(0.6)
    # Cell (0,1): max (bus, 0.3) is above threshold, so car (0.1) is zeroed.
    assert suppressed["car"][0, 1] == 0.0
    assert suppress_cross_class({}, 0.2) == {}


def test_count_calibration_fit_and_estimate():
    class_names = ("car", "bus")
    rng = np.random.default_rng(0)
    features = rng.uniform(0, 10, size=(100, 2, len(COUNT_FEATURE_NAMES)))
    true_counts = features[:, :, 2] * 1.0 + 0.5  # counts follow blob count
    calibration = CountCalibration.fit(class_names, features, true_counts)
    raw, rounded = calibration.estimate(
        {"car": features[0, 0], "bus": features[0, 1]}
    )
    assert raw["car"] == pytest.approx(true_counts[0, 0], abs=0.2)
    assert rounded["car"] == round(raw["car"])
    # A degenerate class (never appears) falls back to its mean.
    features[:, 1, :] = 0.0
    zero_counts = true_counts.copy()
    zero_counts[:, 1] = 0.0
    calibration = CountCalibration.fit(class_names, features, zero_counts)
    raw, rounded = calibration.estimate({"car": features[0, 0], "bus": np.zeros(3)})
    assert rounded["bus"] == 0
    with pytest.raises(ValueError):
        CountCalibration.fit(class_names, features[:, :1, :], true_counts)


def test_pooled_count_head():
    head = PooledCountHead(weights=np.array([2.0, 0.0]), bias=1.0)
    assert head.estimate(np.array([3.0, 100.0])) == pytest.approx(7.0)
    assert head.estimate(np.array([-10.0, 0.0])) == 0.0  # clamped at zero
    with pytest.raises(ValueError):
        head.estimate(np.zeros(3))


@settings(max_examples=25)
@given(
    st.lists(st.floats(0, 1), min_size=16, max_size=16),
    st.floats(0.05, 0.9),
)
def test_count_features_invariants(values, threshold):
    scores = np.array(values).reshape(4, 4)
    mass, cells, blobs = count_features(scores, threshold)
    assert 0 <= blobs <= cells <= 16
    assert mass <= scores.sum() + 1e-9
    assert mass >= threshold * cells - 1e-9 or cells == 0
