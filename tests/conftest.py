"""Shared fixtures for the test suite.

Fixtures that require simulation or filter training are session-scoped and
deliberately tiny (tens of frames), so the whole suite runs in well under a
minute while still exercising the real end-to-end code paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection import ReferenceDetector, annotate_stream
from repro.filters import FilterTrainer
from repro.video import build_detrac, build_jackson
from repro.video.datasets import JACKSON_PROFILE
from repro.video.renderer import FrameRenderer, RendererConfig
from repro.video.scene import SceneConfig, SceneSimulator
from repro.video.stream import VideoStream


@pytest.fixture(scope="session")
def tiny_jackson():
    """A very small Jackson-profile dataset (fast to build, shared by many tests)."""
    return build_jackson(train_size=90, val_size=20, test_size=50, seed=3)


@pytest.fixture(scope="session")
def tiny_detrac():
    """A very small Detrac-profile dataset (three classes, dense frames)."""
    return build_detrac(train_size=70, val_size=20, test_size=40, seed=3)


@pytest.fixture(scope="session")
def jackson_trainer(tiny_jackson):
    return FilterTrainer(dataset=tiny_jackson, max_train_frames=80, background_frames=20)


@pytest.fixture(scope="session")
def trained_od_filter(jackson_trainer):
    return jackson_trainer.train_od_filter()


@pytest.fixture(scope="session")
def trained_ic_filter(jackson_trainer):
    return jackson_trainer.train_ic_filter()


@pytest.fixture(scope="session")
def trained_od_cof(jackson_trainer):
    return jackson_trainer.train_od_count_classifier()


@pytest.fixture(scope="session")
def jackson_test_annotations(tiny_jackson):
    detector = ReferenceDetector(class_names=tiny_jackson.class_names, seed=42)
    return annotate_stream(
        tiny_jackson.test,
        detector,
        tiny_jackson.class_names,
        tiny_jackson.grid(56),
        frame_indices=range(0, 50, 2),
    )


@pytest.fixture(scope="session")
def single_object_stream() -> VideoStream:
    """A stream with exactly one car per frame, for deterministic assertions."""
    config = SceneConfig(
        frame_width=448,
        frame_height=448,
        num_frames=40,
        mean_count=1.0,
        std_count=0.0,
        count_autocorrelation=0.9,
        class_mix=JACKSON_PROFILE.classes[:1],
        max_count=2,
        seed=11,
    )
    scene = SceneSimulator(config).simulate()
    renderer = FrameRenderer(RendererConfig(output_size=112, seed=11))
    return VideoStream(scene=scene, renderer=renderer, name="single-car")


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
