"""Tests for the latency model and simulated clock."""

from __future__ import annotations

import pytest

from repro.cost import (
    IC_BRANCH_MS,
    MASK_RCNN_MS,
    OD_BRANCH_MS,
    YOLO_FULL_MS,
    CostBreakdown,
    SimulatedClock,
)


def test_paper_latency_constants_ordering():
    # The whole point of the filters: branches are orders of magnitude cheaper
    # than the detectors they guard.
    assert IC_BRANCH_MS < OD_BRANCH_MS < YOLO_FULL_MS < MASK_RCNN_MS
    assert MASK_RCNN_MS / OD_BRANCH_MS > 100


def test_clock_accumulates_by_component():
    clock = SimulatedClock()
    clock.charge("filter", 1.5)
    clock.charge("filter", 1.5)
    clock.charge("detector", 200.0)
    assert clock.elapsed_ms == pytest.approx(203.0)
    assert clock.elapsed_seconds == pytest.approx(0.203)
    assert clock.breakdown.per_component_calls == {"filter": 2, "detector": 1}
    clock.reset()
    assert clock.elapsed_ms == 0.0


def test_clock_rejects_negative_charges():
    clock = SimulatedClock()
    with pytest.raises(ValueError):
        clock.charge("x", -1.0)
    with pytest.raises(ValueError):
        clock.charge("x", 1.0, calls=-1)


def test_cost_breakdown_merge():
    a = CostBreakdown(per_component_ms={"f": 10.0}, per_component_calls={"f": 2})
    b = CostBreakdown(per_component_ms={"f": 5.0, "d": 200.0}, per_component_calls={"f": 1, "d": 1})
    merged = a.merged_with(b)
    assert merged.per_component_ms == {"f": 15.0, "d": 200.0}
    assert merged.per_component_calls == {"f": 3, "d": 1}
    assert merged.total_ms == pytest.approx(215.0)
    # merge does not mutate the originals
    assert a.per_component_ms == {"f": 10.0}
