"""Tests for the latency model and simulated clock."""

from __future__ import annotations

import pytest

from repro.cost import (
    IC_BRANCH_MS,
    MASK_RCNN_MS,
    OD_BRANCH_MS,
    YOLO_FULL_MS,
    CostBreakdown,
    SharedCostReport,
    SimulatedClock,
)


def test_paper_latency_constants_ordering():
    # The whole point of the filters: branches are orders of magnitude cheaper
    # than the detectors they guard.
    assert IC_BRANCH_MS < OD_BRANCH_MS < YOLO_FULL_MS < MASK_RCNN_MS
    assert MASK_RCNN_MS / OD_BRANCH_MS > 100


def test_clock_accumulates_by_component():
    clock = SimulatedClock()
    clock.charge("filter", 1.5)
    clock.charge("filter", 1.5)
    clock.charge("detector", 200.0)
    assert clock.elapsed_ms == pytest.approx(203.0)
    assert clock.elapsed_seconds == pytest.approx(0.203)
    assert clock.breakdown.per_component_calls == {"filter": 2, "detector": 1}
    clock.reset()
    assert clock.elapsed_ms == 0.0


def test_clock_rejects_negative_charges():
    clock = SimulatedClock()
    with pytest.raises(ValueError):
        clock.charge("x", -1.0)
    with pytest.raises(ValueError):
        clock.charge("x", 1.0, calls=-1)


def test_cost_breakdown_merge():
    a = CostBreakdown(per_component_ms={"f": 10.0}, per_component_calls={"f": 2})
    b = CostBreakdown(per_component_ms={"f": 5.0, "d": 200.0}, per_component_calls={"f": 1, "d": 1})
    merged = a.merged_with(b)
    assert merged.per_component_ms == {"f": 15.0, "d": 200.0}
    assert merged.per_component_calls == {"f": 3, "d": 1}
    assert merged.total_ms == pytest.approx(215.0)
    # merge does not mutate the originals
    assert a.per_component_ms == {"f": 10.0}


def test_clock_snapshot_delta_accounting():
    clock = SimulatedClock()
    clock.charge("filter", 1.5)
    snapshot = clock.snapshot()
    clock.charge("filter", 1.5)
    clock.charge("detector", 200.0)
    delta = clock.delta_since(snapshot)
    assert delta.per_component_ms == {"filter": 1.5, "detector": 200.0}
    assert delta.per_component_calls == {"filter": 1, "detector": 1}
    # The snapshot is frozen: later charges do not leak into it.
    assert snapshot.per_component_calls == {"filter": 1}
    # A snapshot equal to the current state yields an empty delta.
    assert clock.delta_since(clock.snapshot()).total_ms == 0.0
    # Components untouched since the snapshot are absent from the delta.
    later = clock.snapshot()
    clock.charge("filter", 1.5)
    assert "detector" not in clock.delta_since(later).per_component_ms


def test_breakdown_minus_rejects_non_prefix_snapshots():
    clock = SimulatedClock()
    clock.charge("filter", 1.5)
    snapshot = clock.snapshot()
    clock.reset()
    with pytest.raises(ValueError):
        clock.delta_since(snapshot)
    clock.charge("filter", 0.5)
    with pytest.raises(ValueError):
        clock.delta_since(snapshot)


def test_breakdown_copy_is_independent():
    original = CostBreakdown(per_component_ms={"f": 1.0}, per_component_calls={"f": 1})
    copy = original.copy()
    copy.per_component_ms["f"] = 99.0
    copy.per_component_calls["g"] = 7
    assert original.per_component_ms == {"f": 1.0}
    assert original.per_component_calls == {"f": 1}


def test_shared_cost_report_ratios():
    shared = CostBreakdown(per_component_ms={"od_branch": 100.0}, per_component_calls={"od_branch": 50})
    attributed = {
        "q1": CostBreakdown(per_component_ms={"od_branch": 100.0}, per_component_calls={"od_branch": 50}),
        "q2": CostBreakdown(per_component_ms={"od_branch": 100.0}, per_component_calls={"od_branch": 50}),
        "q3": CostBreakdown(per_component_ms={"od_branch": 100.0}, per_component_calls={"od_branch": 50}),
    }
    report = SharedCostReport(shared=shared, attributed=attributed)
    assert report.shared_ms == pytest.approx(100.0)
    assert report.standalone_ms == pytest.approx(300.0)
    assert report.savings_ratio == pytest.approx(3.0)
    # Degenerate cases keep the ratio total.
    empty = SharedCostReport(shared=CostBreakdown())
    assert empty.savings_ratio == 1.0
    free_shared = SharedCostReport(shared=CostBreakdown(), attributed=attributed)
    assert free_shared.savings_ratio == float("inf")
