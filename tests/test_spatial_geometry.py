"""Unit and property tests for boxes, points and IoU."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.spatial.geometry import Box, Point, box_iou, union_box


def test_point_distance_and_translation():
    a = Point(0.0, 0.0)
    b = Point(3.0, 4.0)
    assert a.distance_to(b) == pytest.approx(5.0)
    assert a.translated(1.0, 2.0) == Point(1.0, 2.0)
    assert b.as_tuple() == (3.0, 4.0)


def test_box_requires_positive_extent():
    with pytest.raises(ValueError):
        Box(0, 0, 0, 10)
    with pytest.raises(ValueError):
        Box(5, 5, 4, 10)
    with pytest.raises(ValueError):
        Box.from_center(0, 0, -1, 5)


def test_box_basic_properties():
    box = Box.from_xywh(10, 20, 30, 40)
    assert box.width == 30
    assert box.height == 40
    assert box.area == 1200
    assert box.center == Point(25, 40)
    assert box.as_tuple() == (10, 20, 40, 60)


def test_box_containment_and_intersection():
    outer = Box(0, 0, 100, 100)
    inner = Box(10, 10, 20, 20)
    disjoint = Box(200, 200, 210, 210)
    assert outer.contains_box(inner)
    assert not inner.contains_box(outer)
    assert outer.contains_point(Point(50, 50))
    assert not outer.contains_point(Point(100, 100))  # max edge exclusive
    assert outer.intersects(inner)
    assert not outer.intersects(disjoint)
    assert outer.intersection(disjoint) is None
    overlap = Box(50, 50, 150, 150).intersection(outer)
    assert overlap == Box(50, 50, 100, 100)


def test_box_clipping_and_scaling():
    box = Box(-10, -10, 50, 50)
    clipped = box.clipped(40, 40)
    assert clipped == Box(0, 0, 40, 40)
    assert Box(100, 100, 200, 200).clipped(50, 50) is None
    scaled = Box(0, 0, 10, 20).scaled(0.5)
    assert scaled == Box(0, 0, 5, 10)
    with pytest.raises(ValueError):
        Box(0, 0, 1, 1).scaled(0)


def test_union_box():
    boxes = [Box(0, 0, 10, 10), Box(5, 5, 20, 15), Box(-5, 2, 3, 8)]
    merged = union_box(boxes)
    assert merged == Box(-5, 0, 20, 15)
    with pytest.raises(ValueError):
        union_box([])


def test_iou_known_values():
    a = Box(0, 0, 10, 10)
    assert box_iou(a, a) == pytest.approx(1.0)
    b = Box(5, 0, 15, 10)
    assert box_iou(a, b) == pytest.approx(50 / 150)
    assert box_iou(a, Box(20, 20, 30, 30)) == 0.0


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
boxes = st.builds(
    Box.from_center,
    st.floats(-100, 100),
    st.floats(-100, 100),
    st.floats(1, 50),
    st.floats(1, 50),
)


@given(boxes, boxes)
def test_iou_is_symmetric_and_bounded(a, b):
    iou_ab = box_iou(a, b)
    iou_ba = box_iou(b, a)
    assert math.isclose(iou_ab, iou_ba, rel_tol=1e-9, abs_tol=1e-12)
    assert 0.0 <= iou_ab <= 1.0 + 1e-9


@given(boxes)
def test_iou_with_self_is_one(a):
    assert box_iou(a, a) == pytest.approx(1.0)


@given(boxes, st.floats(-50, 50), st.floats(-50, 50))
def test_translation_preserves_area(box, dx, dy):
    moved = box.translated(dx, dy)
    assert math.isclose(moved.area, box.area, rel_tol=1e-9)


@given(boxes, boxes)
def test_union_contains_both(a, b):
    merged = union_box([a, b])
    assert merged.contains_box(a)
    assert merged.contains_box(b)
