"""Tests for scene simulation, dataset profiles and Table II statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.video.datasets import (
    CORAL_PROFILE,
    DETRAC_PROFILE,
    JACKSON_PROFILE,
    build_dataset,
    dataset_profiles,
)
from repro.video.scene import SceneConfig, SceneSimulator
from repro.video.synthesis import ClassMixEntry, DatasetProfile


def test_class_mix_entry_validation():
    with pytest.raises(ValueError):
        ClassMixEntry(class_name="car", frequency=0.0)
    with pytest.raises(ValueError):
        ClassMixEntry(class_name="car", frequency=1.0, motion="teleport")
    with pytest.raises(ValueError):
        ClassMixEntry(class_name="car", frequency=1.0, parked_probability=1.5)


def test_dataset_profile_validation_and_helpers():
    with pytest.raises(ValueError):
        DatasetProfile(
            name="bad", description="", classes=(), mean_objects_per_frame=1, std_objects_per_frame=1
        )
    frequencies = DETRAC_PROFILE.class_frequencies
    assert frequencies["car"] == pytest.approx(0.92)
    assert sum(frequencies.values()) == pytest.approx(1.0)
    assert DETRAC_PROFILE.entry_for("bus").class_name == "bus"
    with pytest.raises(KeyError):
        DETRAC_PROFILE.entry_for("fish")
    scaled = JACKSON_PROFILE.scaled(train_size=10, test_size=5)
    assert scaled.default_train_size == 10
    assert scaled.default_test_size == 5
    assert scaled.mean_objects_per_frame == JACKSON_PROFILE.mean_objects_per_frame


def test_profiles_registry():
    profiles = dataset_profiles()
    assert set(profiles) == {"coral", "jackson", "detrac"}
    assert profiles["coral"] is CORAL_PROFILE


def test_scene_counts_match_target_statistics():
    config = SceneConfig.from_profile(DETRAC_PROFILE, num_frames=250, seed=5)
    scene = SceneSimulator(config).simulate()
    counts = scene.count_series()
    assert counts.shape == (250,)
    assert abs(counts.mean() - DETRAC_PROFILE.mean_objects_per_frame) < 1.5
    assert abs(counts.std() - DETRAC_PROFILE.std_objects_per_frame) < 2.0
    # Ground truth is consistent with the count series.
    for index in (0, 100, 249):
        assert scene.ground_truth(index).count == counts[index]


def test_scene_ground_truth_contents():
    config = SceneConfig.from_profile(JACKSON_PROFILE, num_frames=60, seed=2)
    scene = SceneSimulator(config).simulate()
    truth = scene.ground_truth(30)
    assert truth.frame_width == JACKSON_PROFILE.frame_width
    for state in truth.objects:
        assert state.class_name in JACKSON_PROFILE.class_names
        # Every reported object is at least partly inside the frame.
        assert state.box.clipped(truth.frame_width, truth.frame_height) is not None
    counts = truth.counts_by_class()
    assert sum(counts.values()) == truth.count
    with pytest.raises(IndexError):
        scene.ground_truth(60)


def test_ground_truth_location_masks(tiny_jackson):
    grid = tiny_jackson.grid(28)
    truth = tiny_jackson.train.ground_truth(10)
    masks = truth.location_masks(grid, tiny_jackson.class_names)
    for name, mask in masks.items():
        if truth.count_of(name) > 0:
            assert mask.count > 0
        else:
            assert mask.count == 0


def test_build_dataset_splits_share_camera(tiny_jackson):
    # All three splits share the same static background (same camera).
    train_bg = tiny_jackson.train.renderer._background(112, 112)
    test_bg = tiny_jackson.test.renderer._background(112, 112)
    assert np.allclose(train_bg, test_bg)
    # Scene content differs between splits.
    assert tiny_jackson.train.count_series().sum() != tiny_jackson.test.count_series().sum() or len(
        tiny_jackson.train
    ) != len(tiny_jackson.test)


def test_dataset_summary_shape(tiny_detrac):
    summary = tiny_detrac.summary()
    assert summary["dataset"] == "detrac"
    assert set(summary["classes"]) == {"car", "bus", "truck"}
    assert summary["train_size"] == len(tiny_detrac.train)
