"""Train the CNN branch network end to end with the paper's multi-task loss.

The large experiment sweeps use the fast closed-form linear branch heads (see
DESIGN.md); this example exercises the faithful convolutional implementation
on the from-scratch :mod:`repro.nn` framework: a shared conv trunk with a
count head (GAP + dense) and a grid head (1x1 conv + sigmoid), trained with
the two-phase schedule from Section II-A — counts only first, then the
localisation term is switched on with (alpha, beta) = (1, 10) and beta decays.

Run with::

    python examples/train_branch_network.py
"""

from __future__ import annotations

import numpy as np

from repro import build_jackson
from repro.detection import ReferenceDetector, annotate_stream
from repro.filters import NeuralTrainingConfig, train_neural_filter
from repro.filters.metrics import evaluate_count_filter, evaluate_localization


def main() -> None:
    print("Building a small synthetic Jackson dataset ...")
    dataset = build_jackson(train_size=160, val_size=30, test_size=80)
    detector = ReferenceDetector(class_names=dataset.class_names, seed=0)
    grid = dataset.grid(56)

    print("Annotating the training frames with the reference detector ...")
    train_annotations = annotate_stream(
        dataset.train, detector, dataset.class_names, grid, frame_indices=range(0, 160, 2)
    )

    config = NeuralTrainingConfig(
        image_size=56,
        grid_size=14,
        epochs=6,
        warmup_epochs=2,
        batch_size=16,
        base_channels=8,
    )
    print(
        f"Training the branch network end to end "
        f"({config.epochs} epochs, {config.image_size}x{config.image_size} input, "
        f"{config.grid_size}x{config.grid_size} grid) ..."
    )
    neural_filter = train_neural_filter(
        dataset.train, train_annotations, dataset.class_names, config=config
    )

    print("Evaluating on held-out test frames ...")
    test_annotations = annotate_stream(
        dataset.test, detector, dataset.class_names,
        dataset.grid(config.grid_size), frame_indices=range(0, 80, 2),
    )
    counts = evaluate_count_filter(neural_filter, dataset.test, test_annotations)
    localization = evaluate_localization(neural_filter, dataset.test, test_annotations)
    print(f"  count accuracy:      exact {counts.exact:.2f}, ±1 {counts.within_1:.2f}")
    print(f"  localisation F1:     {localization.micro_f1:.2f} "
          f"(Manhattan-1: {localization.micro_f1_manhattan_1:.2f})")
    print("  per-class F1:        "
          + ", ".join(f"{name}={value:.2f}" for name, value in localization.per_class_f1.items()))


if __name__ == "__main__":
    main()
