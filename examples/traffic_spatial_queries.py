"""Traffic monitoring with spatial constraints on a dense (Detrac-style) stream.

Demonstrates the spatial side of the query language on a busy traffic camera:

* the paper's SQL-like syntax, parsed with :func:`repro.query.parse_query`;
* quadrant (screen-region) predicates;
* how cascade tolerance trades accuracy against selectivity.

Run with::

    python examples/traffic_spatial_queries.py
"""

from __future__ import annotations

from repro import FilterTrainer, build_detrac
from repro.detection import ReferenceDetector
from repro.query import (
    PlannerConfig,
    QueryBuilder,
    QueryPlanner,
    StreamingQueryExecutor,
    brute_force_execute,
    parse_query,
)
from repro.spatial.regions import Quadrant, quadrant_region


QUERY_TEXT = """
SELECT cameraID, frameID,
       C1(F1(vehBox1)) AS vehType1,
       C1(F1(vehBox2)) AS vehType2
FROM (PROCESS trafficCam PRODUCE cameraID, frameID, vehBox1, vehBox2 USING VehDetector)
WHERE vehType1 = car AND vehType2 = bus AND (ORDER(vehType1, vehType2) = RIGHT)
"""


def main() -> None:
    print("Building the synthetic Detrac dataset (dense traffic) ...")
    dataset = build_detrac(train_size=400, val_size=80, test_size=240)
    trainer = FilterTrainer(dataset=dataset, max_train_frames=320)
    filters = trainer.train_all()
    detector = ReferenceDetector(class_names=dataset.class_names, seed=321)

    # Query 1: parsed from the paper's SQL-like syntax — "a car with a bus on
    # its right" (i.e. car left of bus).
    profile = dataset.profile
    car_left_of_bus = parse_query(
        QUERY_TEXT,
        name="car_left_of_bus",
        frame_width=profile.frame_width,
        frame_height=profile.frame_height,
    )
    print(f"\nParsed query: {car_left_of_bus.describe()}")

    # Query 2: built programmatically — "at least two cars in the lower-left
    # quadrant and a bus anywhere above one of them".
    lower_left = quadrant_region(Quadrant.LOWER_LEFT, profile.frame_width, profile.frame_height)
    busy_corner = (
        QueryBuilder("busy_corner")
        .in_region("car", lower_left).at_least(2)
        .spatial("bus").above("car")
        .build()
    )
    print(f"Built query:  {busy_corner.describe()}")

    executor = StreamingQueryExecutor(detector)
    for query in (car_left_of_bus, busy_corner):
        brute = brute_force_execute(
            query, dataset.test, ReferenceDetector(class_names=dataset.class_names, seed=321)
        )
        print(f"\n=== {query.name} ===")
        print(f"  true matching frames: {brute.num_matches} / {brute.stats.frames_scanned}")
        for tolerance, dilation in ((0, 0), (1, 1), (1, 2)):
            planner = QueryPlanner(
                filters, PlannerConfig(count_tolerance=tolerance, location_dilation=dilation)
            )
            cascade = planner.plan(query)
            result = executor.execute(query, dataset.test, cascade)
            accuracy = result.accuracy_against(brute.matched_frames)
            print(
                f"  cascade {cascade.describe():<28} accuracy {accuracy['accuracy']:.2f}  "
                f"selectivity {result.stats.filter_selectivity:.3f}  "
                f"speedup {result.speedup_against(brute):.1f}x"
            )


if __name__ == "__main__":
    main()
