"""Aggregate monitoring with control variates (Section III of the paper).

Scenario: a traffic-authority dashboard wants, for every hopping window of the
stream, an estimate of how often a car is present in the lower-right quadrant
of the intersection (e.g. a loading zone) — without running the expensive
detector on every frame.

The example estimates the aggregate three ways over each window:

1. plain frame sampling (detector only on the sampled frames);
2. sampling with a single control variate (the OD filter's answer);
3. sampling with multiple control variates (one per query predicate);

and reports the variance reduction the control variates achieve.

Run with::

    python examples/aggregate_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import FilterTrainer, build_jackson
from repro.aggregates import (
    AggregateMonitor,
    AggregateQuerySpec,
    HoppingWindow,
    per_predicate_controls,
    query_indicator_control,
)
from repro.detection import ReferenceDetector
from repro.query import QueryBuilder
from repro.spatial.regions import Quadrant, quadrant_region


def main() -> None:
    print("Building the synthetic Jackson dataset ...")
    dataset = build_jackson(train_size=400, val_size=80, test_size=240)
    trainer = FilterTrainer(dataset=dataset, max_train_frames=320)
    od_filter = trainer.train_od_filter()
    detector = ReferenceDetector(class_names=dataset.class_names, seed=99)

    profile = dataset.profile
    lower_right = quadrant_region(Quadrant.LOWER_RIGHT, profile.frame_width, profile.frame_height)
    query = (
        QueryBuilder("car_in_loading_zone")
        .in_region("car", lower_right).at_least(1)
        .window(size=120, advance=120)
        .build()
    )
    print(f"Aggregate query: {query.describe()}")

    single_cv = AggregateQuerySpec.from_query(query, [query_indicator_control(query)])
    multi_cv = AggregateQuerySpec.from_query(query, per_predicate_controls(query))
    monitor = AggregateMonitor(detector=detector, frame_filter=od_filter, seed=7)

    window_spec = HoppingWindow(size=query.window.size, advance=query.window.advance)
    print(f"\n{'window':<14}{'plain mean':>12}{'cv mean':>10}{'var.red (CV)':>14}{'var.red (MCV)':>15}")
    for bounds in window_spec.windows_over(len(dataset.test)):
        single = monitor.estimate(single_cv, dataset.test, sample_size=40, window=bounds)
        multi = monitor.estimate(multi_cv, dataset.test, sample_size=40, window=bounds)
        print(
            f"[{bounds.start:>4},{bounds.stop:>4})"
            f"{single.plain.mean:>12.3f}{single.control_variate.mean:>10.3f}"
            f"{single.variance_reduction:>14.1f}{multi.variance_reduction:>15.1f}"
        )

    print(
        "\nPer-sample cost: "
        f"{single.per_frame_cost_ms:.1f} ms (detector {single.detector_only_cost_ms:.0f} ms "
        f"+ filter {single.cost_overhead_ms:.1f} ms) — the control variates cost "
        "≈1% extra per sampled frame."
    )


if __name__ == "__main__":
    main()
