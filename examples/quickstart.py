"""Quickstart: train filters, run a monitoring query, compare against brute force.

This is the smallest end-to-end tour of the library:

1. build a synthetic Jackson-town-square-style dataset (single static camera);
2. train the OD / IC / OD-COF filters against reference-detector annotations;
3. express a monitoring query ("exactly one car and one person, car left of
   the person") and plan a filter cascade for it;
4. execute it over the test stream with and without the cascade, and compare
   answers, accuracy and (simulated) execution time.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import FilterTrainer, QueryBuilder, build_jackson
from repro.detection import ReferenceDetector
from repro.query import PlannerConfig, QueryPlanner, StreamingQueryExecutor, brute_force_execute


def main() -> None:
    print("Building the synthetic Jackson dataset ...")
    dataset = build_jackson(train_size=400, val_size=80, test_size=240)
    summary = dataset.summary()
    print(
        f"  {summary['train_size']} train / {summary['test_size']} test frames, "
        f"{summary['objects_per_frame_mean']:.1f} ± {summary['objects_per_frame_std']:.1f} objects per frame"
    )

    print("Training the approximate filters (OD, IC, OD-COF) ...")
    trainer = FilterTrainer(dataset=dataset, max_train_frames=320)
    filters = trainer.train_all()

    query = (
        QueryBuilder("car_left_of_person")
        .count("car").equals(1)
        .count("person").equals(1)
        .spatial("car").left_of("person")
        .build()
    )
    print(f"Query: {query.describe()}")

    planner = QueryPlanner(filters, PlannerConfig(count_tolerance=0, location_dilation=1))
    cascade = planner.plan(query)
    print(f"Planned filter cascade: {cascade.describe()}")

    detector = ReferenceDetector(class_names=dataset.class_names, seed=123)
    executor = StreamingQueryExecutor(detector)
    filtered = executor.execute(query, dataset.test, cascade)
    brute = brute_force_execute(
        query, dataset.test, ReferenceDetector(class_names=dataset.class_names, seed=123)
    )

    accuracy = filtered.accuracy_against(brute.matched_frames)
    print("\nResults")
    print(f"  matching frames (filtered execution): {filtered.num_matches}")
    print(f"  matching frames (brute force):        {brute.num_matches}")
    print(f"  accuracy vs brute force:              {accuracy['accuracy']:.3f}")
    print(f"  frames sent to the detector:          {filtered.stats.detector_invocations}"
          f" / {filtered.stats.frames_scanned}")
    print(f"  simulated execution time (filtered):  {filtered.stats.simulated_seconds:.1f} s")
    print(f"  simulated execution time (brute):     {brute.stats.simulated_seconds:.1f} s")
    print(f"  speedup:                              {filtered.speedup_against(brute):.1f}x")


if __name__ == "__main__":
    main()
