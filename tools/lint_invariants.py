#!/usr/bin/env python3
"""Repo-specific invariant lint (stdlib only — runs before any dependency install).

Checks structural invariants the test suite cannot see but the engine relies
on.  Each rule prints ``INV0xx`` findings with file:line locations and the
script exits non-zero when any rule is violated.

* **INV001 — planner checks stay picklable frozen dataclasses.**  Every
  ``*Check`` class in ``repro/query/planner.py`` must be decorated
  ``@dataclass(frozen=True)``: the process backend ships cascade checks to
  workers by pickling, and the concurrency analyzer (CC003) assumes frozen
  value semantics.
* **INV002 — no lambda checks in planner-built cascades.**  A ``check=``
  keyword in ``repro/query/planner.py`` must not be a lambda or local
  function (unpicklable by reference; breaks the process backend).
* **INV003 — no frame mutation in worker paths.**  In the executor /
  parallel / temporal modules, nothing may assign to attributes or elements
  of objects named ``frame`` / ``frames`` / ``images``: frames are shared
  across queries and (for the process backend) live in shared memory, so a
  mutation in one worker path corrupts every other reader.
* **INV004 — worker clocks are constructed in exactly one place.**  In
  ``repro/query/parallel.py``, ``SimulatedClock(...)`` may only be called
  inside ``_attach_worker_clock``: a clock constructed per chunk or inside a
  task function would silently drop simulated cost between merge points.
* **INV005 — diagnostic codes and the README table stay in sync.**  Every
  code registered in ``repro/analysis/diagnostics.py`` must appear in
  README.md (and no unregistered ``QA/PL/CC`` code may appear in the
  registry section of the README).
* **INV006 — the shape-interpreter and sanitizer code families stay
  registered.**  The ``NN0xx`` (shape/dtype), ``RC0xx`` (race /
  determinism) and ``NU0xx`` (numeric) codes that the analyzers emit must
  all exist in ``DIAGNOSTIC_CODES`` — an emitted-but-unregistered code
  raises ``ValueError`` at diagnostic construction, i.e. at the worst
  possible moment (mid-scan, inside a worker).  Combined with INV005 this
  also forces them into the README table.
* **INV007 — sanitizer hooks are zero-overhead when off.**  Each hook
  module declares its module-level ``_*_SANITIZER = None`` global, and
  every *use* of that global sits inside an ``if <hook> is not None:``
  body — so the uninstrumented hot paths never pay an attribute call, and
  ``sanitize=None`` runs are bit-identical to the pre-sanitizer engine.
* **INV009 — fault-injection hooks are zero-overhead when off.**  The same
  contract as INV007 for the fault layer: each hook module declares a
  module-level ``_FAULT_INJECTOR = None`` global and every use of it sits
  inside an ``if _FAULT_INJECTOR is not None:`` body, so runs without an
  installed :class:`repro.faults.FaultInjector` are bit-identical to the
  pre-fault-layer engine.
* **INV008 — registry membership is only mutated under the registry lock.**
  In ``repro/service/registry.py`` every mutation of ``self._entries`` /
  ``self._by_stream`` (assignment, ``del``, or a mutator method call) must
  sit inside a ``with self._lock:`` body (or ``__init__``): the standing-
  query service mutates membership from the caller thread while shard
  workers read it from ``_entry_for_sid``, so an unlocked mutation is a
  data race on live emission routing.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

PLANNER = SRC / "query" / "planner.py"
DIAGNOSTICS = SRC / "analysis" / "diagnostics.py"
README = REPO / "README.md"
WORKER_PATH_MODULES = (
    SRC / "query" / "executor.py",
    SRC / "query" / "parallel.py",
    SRC / "query" / "temporal.py",
)
FRAME_NAMES = {"frame", "frames", "images"}

#: codes the shape interpreter and runtime sanitizers emit (INV006); keep in
#: sync with repro/analysis/{shapes,sanitizers}.py
ANALYZER_CODES = (
    "NN001", "NN002", "NN003", "NN004", "NN005",
    "RC001", "RC002", "RC003", "RC004",
    "NU001", "NU002", "NU003",
)

#: (module, hook global) pairs; mirrors HOOK_SITES in
#: repro/analysis/sanitizers.py (INV007)
HOOK_MODULES = (
    (SRC / "cost.py", "_CLOCK_SANITIZER"),
    (SRC / "video" / "stream.py", "_FRAME_CACHE_SANITIZER"),
    (SRC / "nn" / "network.py", "_LAYER_SANITIZER"),
    (SRC / "query" / "parallel.py", "_WORKER_SANITIZER"),
)

#: (module, hook global) pairs; mirrors FAULT_HOOK_SITES in
#: repro/faults/injector.py (INV009)
FAULT_HOOK_MODULES = (
    (SRC / "video" / "stream.py", "_FAULT_INJECTOR"),
    (SRC / "query" / "parallel.py", "_FAULT_INJECTOR"),
    (SRC / "query" / "session.py", "_FAULT_INJECTOR"),
    (SRC / "service" / "service.py", "_FAULT_INJECTOR"),
    (SRC / "service" / "ingest.py", "_FAULT_INJECTOR"),
    (SRC / "service" / "emitters.py", "_FAULT_INJECTOR"),
)


def _parse(path: Path) -> ast.Module:
    return ast.parse(path.read_text(encoding="utf-8"), filename=str(path))


def _is_frozen_dataclass_decorator(node: ast.expr) -> bool:
    """``@dataclass(frozen=True)`` (possibly via ``dataclasses.dataclass``)."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
    if name != "dataclass":
        return False
    return any(
        keyword.arg == "frozen"
        and isinstance(keyword.value, ast.Constant)
        and keyword.value.value is True
        for keyword in node.keywords
    )


def check_planner_checks_frozen(findings: list[str]) -> None:
    tree = _parse(PLANNER)
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef) or not node.name.endswith("Check"):
            continue
        if not any(_is_frozen_dataclass_decorator(d) for d in node.decorator_list):
            findings.append(
                f"INV001 {PLANNER.relative_to(REPO)}:{node.lineno}: "
                f"{node.name} must be a @dataclass(frozen=True) — planned "
                "checks are pickled to process workers"
            )


def check_no_lambda_checks(findings: list[str]) -> None:
    tree = _parse(PLANNER)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        for keyword in node.keywords:
            if keyword.arg == "check" and isinstance(keyword.value, ast.Lambda):
                findings.append(
                    f"INV002 {PLANNER.relative_to(REPO)}:{keyword.value.lineno}: "
                    "planner passes a lambda as check= — unpicklable by "
                    "reference; use a module-level frozen dataclass"
                )


def _assignment_targets(node: ast.AST) -> list[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)) and node.target is not None:
        return [node.target]
    return []


def check_no_frame_mutation(findings: list[str]) -> None:
    for path in WORKER_PATH_MODULES:
        tree = _parse(path)
        for node in ast.walk(tree):
            for target in _assignment_targets(node):
                if not isinstance(target, (ast.Attribute, ast.Subscript)):
                    continue
                base = target.value
                if isinstance(base, ast.Name) and base.id in FRAME_NAMES:
                    findings.append(
                        f"INV003 {path.relative_to(REPO)}:{node.lineno}: "
                        f"mutation of {base.id!r} — frames are shared across "
                        "queries/workers and must stay immutable"
                    )


def check_worker_clock_construction(findings: list[str]) -> None:
    path = SRC / "query" / "parallel.py"
    tree = _parse(path)

    allowed_spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == "_attach_worker_clock":
            allowed_spans.append((node.lineno, node.end_lineno or node.lineno))

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
        if name != "SimulatedClock":
            continue
        if any(start <= node.lineno <= end for start, end in allowed_spans):
            continue
        findings.append(
            f"INV004 {path.relative_to(REPO)}:{node.lineno}: SimulatedClock "
            "constructed outside _attach_worker_clock — per-chunk clocks "
            "drop simulated cost between merge points"
        )


def _registered_codes() -> list[str]:
    """The DIAGNOSTIC_CODES keys, read via ast (no package import needed)."""
    tree = _parse(DIAGNOSTICS)
    for node in ast.walk(tree):
        targets = _assignment_targets(node)
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "DIAGNOSTIC_CODES":
                value = node.value
                if isinstance(value, ast.Dict):
                    return [
                        key.value
                        for key in value.keys
                        if isinstance(key, ast.Constant) and isinstance(key.value, str)
                    ]
    return []


def check_readme_code_table(findings: list[str]) -> None:
    codes = _registered_codes()
    if not codes:
        findings.append(
            f"INV005 {DIAGNOSTICS.relative_to(REPO)}: DIAGNOSTIC_CODES "
            "registry not found (moved or renamed?)"
        )
        return
    readme = README.read_text(encoding="utf-8")
    for code in codes:
        if not re.search(rf"\b{re.escape(code)}\b", readme):
            findings.append(
                f"INV005 README.md: diagnostic code {code} is registered in "
                f"{DIAGNOSTICS.relative_to(REPO)} but undocumented in the "
                "README error-code table"
            )


def check_analyzer_codes_registered(findings: list[str]) -> None:
    registered = set(_registered_codes())
    for code in ANALYZER_CODES:
        if code not in registered:
            findings.append(
                f"INV006 {DIAGNOSTICS.relative_to(REPO)}: analyzer code "
                f"{code} is emitted by repro.analysis but missing from "
                "DIAGNOSTIC_CODES — constructing it would raise mid-scan"
            )


def _is_hook_guard(node: ast.AST, hook: str) -> bool:
    """``if <hook> is not None:`` (the INV007 zero-overhead guard)."""
    if not isinstance(node, ast.If) or not isinstance(node.test, ast.Compare):
        return False
    test = node.test
    return (
        isinstance(test.left, ast.Name)
        and test.left.id == hook
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.IsNot)
        and len(test.comparators) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    )


def _check_hooks_guarded(
    findings: list[str],
    modules: tuple[tuple[Path, str], ...],
    code: str,
    installer: str,
    fast_path: str,
) -> None:
    """The shared INV007/INV009 contract: declared global, guarded uses."""
    for path, hook in modules:
        tree = _parse(path)
        declared = any(
            isinstance(target, ast.Name) and target.id == hook
            for node in tree.body
            for target in _assignment_targets(node)
        )
        if not declared:
            findings.append(
                f"{code} {path.relative_to(REPO)}: module-level {hook} = None "
                f"declaration missing — {installer} installs hooks by "
                "setattr on this global"
            )
            continue
        # Spans where a bare use of the hook is legitimate: the guard test
        # itself and the guarded body (not the else branch).
        allowed: list[tuple[int, int]] = []
        for node in ast.walk(tree):
            if _is_hook_guard(node, hook):
                allowed.append((node.test.lineno, node.test.end_lineno or node.test.lineno))
                allowed.append(
                    (node.body[0].lineno, node.body[-1].end_lineno or node.body[-1].lineno)
                )
        for node in ast.walk(tree):
            if not isinstance(node, ast.Name) or node.id != hook:
                continue
            if not isinstance(node.ctx, ast.Load):
                continue  # the declaration / reassignment, checked above
            if any(start <= node.lineno <= end for start, end in allowed):
                continue
            findings.append(
                f"{code} {path.relative_to(REPO)}:{node.lineno}: {hook} used "
                f"outside an `if {hook} is not None:` body — unguarded hook "
                f"uses tax the {fast_path} fast path"
            )


def check_sanitizer_hooks_guarded(findings: list[str]) -> None:
    _check_hooks_guarded(
        findings, HOOK_MODULES, "INV007", "repro.analysis.sanitizers",
        "sanitize=None",
    )


def check_fault_hooks_guarded(findings: list[str]) -> None:
    _check_hooks_guarded(
        findings, FAULT_HOOK_MODULES, "INV009", "repro.faults.injector",
        "no-injector",
    )


#: the registry containers whose mutations INV008 requires the lock around
REGISTRY = SRC / "service" / "registry.py"
REGISTRY_CONTAINERS = {"_entries", "_by_stream"}
#: container methods that mutate in place (reads like .get/.items need no lock
#: *here* — the registry's read methods take it anyway for consistency)
MUTATOR_METHODS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "setdefault", "update", "add", "discard",
}


def _is_registry_container(node: ast.expr) -> bool:
    """``self._entries`` / ``self._by_stream``, possibly via a subscript."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr in REGISTRY_CONTAINERS
    )


def check_registry_mutation_locked(findings: list[str]) -> None:
    tree = _parse(REGISTRY)

    allowed_spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == "__init__":
            allowed_spans.append((node.lineno, node.end_lineno or node.lineno))
        if isinstance(node, ast.With):
            for item in node.items:
                expr = item.context_expr
                if (
                    isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                    and expr.attr == "_lock"
                ):
                    allowed_spans.append(
                        (node.body[0].lineno, node.body[-1].end_lineno or node.lineno)
                    )

    def _locked(lineno: int) -> bool:
        return any(start <= lineno <= end for start, end in allowed_spans)

    for node in ast.walk(tree):
        mutations: list[ast.expr] = []
        for target in _assignment_targets(node):
            if _is_registry_container(target):
                mutations.append(target)
        if isinstance(node, ast.Delete):
            mutations.extend(t for t in node.targets if _is_registry_container(t))
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATOR_METHODS
            and _is_registry_container(node.func.value)
        ):
            mutations.append(node.func)
        for mutation in mutations:
            if _locked(node.lineno):
                continue
            findings.append(
                f"INV008 {REGISTRY.relative_to(REPO)}:{node.lineno}: registry "
                "membership mutated outside `with self._lock:` — shard "
                "workers read membership concurrently"
            )


def main() -> int:
    findings: list[str] = []
    check_planner_checks_frozen(findings)
    check_no_lambda_checks(findings)
    check_no_frame_mutation(findings)
    check_worker_clock_construction(findings)
    check_readme_code_table(findings)
    check_analyzer_codes_registered(findings)
    check_sanitizer_hooks_guarded(findings)
    check_fault_hooks_guarded(findings)
    check_registry_mutation_locked(findings)
    if findings:
        for finding in findings:
            print(finding)
        print(f"{len(findings)} invariant violation(s)")
        return 1
    print("lint_invariants: all invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
