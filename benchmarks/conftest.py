"""Shared configuration for the benchmark harness.

Each benchmark regenerates one table or figure of the paper at a reduced
scale (see ``BENCH_CONFIG``) so the full harness completes in minutes on a
CPU.  Trained filters and datasets are cached per process by
``repro.experiments.context.get_context``, so the first benchmark that
touches a dataset pays the training cost and the rest reuse it.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.context import ExperimentConfig

# One shared scale for all benchmarks: large enough that every table/figure
# is qualitatively meaningful, small enough for a laptop CPU run.
BENCH_CONFIG = ExperimentConfig(
    train_size=300,
    val_size=60,
    test_size=160,
    max_train_frames=250,
    test_stride=2,
)


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return BENCH_CONFIG


def print_rows(title: str, text: str) -> None:
    """Echo a reproduced table to stdout (shown with ``pytest -s``)."""
    print(f"\n=== {title} ===")
    print(text)


def bench_wall_seconds(benchmark) -> float | None:
    """Best-effort mean wall seconds of the benchmark fixture's timed rounds."""
    try:
        return float(benchmark.stats.stats.mean)
    except Exception:
        return None


def write_bench_json(
    pytestconfig,
    name: str,
    params: dict,
    wall_seconds: float | None,
    simulated_seconds: float | None = None,
    speedup: float | None = None,
) -> str | None:
    """Persist one benchmark's headline measurement as ``BENCH_<name>.json``.

    Every benchmark emits the same schema — ``{name, params, wall_seconds,
    simulated_seconds, speedup}`` — so the perf trajectory across commits is
    machine-readable (CI archives the files as artifacts).  Fields that a
    benchmark has no meaningful value for (an accuracy table has no speedup)
    are ``null``, never omitted.  Writing only happens when ``--json PATH``
    was passed: a ``PATH`` ending in ``.json`` is used verbatim (single
    benchmark runs), anything else is treated as a directory to drop
    ``BENCH_<name>.json`` into.  Returns the written path, or ``None`` when
    ``--json`` is off.
    """
    target = pytestconfig.getoption("--json")
    if not target:
        return None
    payload = {
        "name": name,
        "params": params,
        "wall_seconds": None if wall_seconds is None else round(float(wall_seconds), 6),
        "simulated_seconds": (
            None if simulated_seconds is None else round(float(simulated_seconds), 6)
        ),
        "speedup": None if speedup is None else round(float(speedup), 4),
    }
    path = Path(target)
    if path.suffix != ".json":
        path = path / f"BENCH_{name}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return str(path)


def count_filter_frames(frame_filter, counts: dict[int, int]):
    """Instrument a filter to count per-frame evaluations (by frame index).

    Both ``predict`` and ``predict_batch`` bump ``counts[frame.index]``.
    Returns a restore callback that removes the instrumentation.  Shared by
    the multi-query benchmark and test suite to assert the at-most-once-per-
    frame sharing guarantee.
    """
    original_predict = frame_filter.predict
    original_batch = frame_filter.predict_batch

    def counting_predict(frame):
        counts[frame.index] = counts.get(frame.index, 0) + 1
        return original_predict(frame)

    def counting_batch(frames):
        for frame in frames:
            counts[frame.index] = counts.get(frame.index, 0) + 1
        return original_batch(frames)

    frame_filter.predict = counting_predict
    frame_filter.predict_batch = counting_batch

    def restore():
        del frame_filter.predict
        del frame_filter.predict_batch

    return restore
