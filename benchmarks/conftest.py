"""Shared configuration for the benchmark harness.

Each benchmark regenerates one table or figure of the paper at a reduced
scale (see ``BENCH_CONFIG``) so the full harness completes in minutes on a
CPU.  Trained filters and datasets are cached per process by
``repro.experiments.context.get_context``, so the first benchmark that
touches a dataset pays the training cost and the rest reuse it.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.experiments.context import ExperimentConfig

# One shared scale for all benchmarks: large enough that every table/figure
# is qualitatively meaningful, small enough for a laptop CPU run.
BENCH_CONFIG = ExperimentConfig(
    train_size=300,
    val_size=60,
    test_size=160,
    max_train_frames=250,
    test_stride=2,
)


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return BENCH_CONFIG


def print_rows(title: str, text: str) -> None:
    """Echo a reproduced table to stdout (shown with ``pytest -s``)."""
    print(f"\n=== {title} ===")
    print(text)


def count_filter_frames(frame_filter, counts: dict[int, int]):
    """Instrument a filter to count per-frame evaluations (by frame index).

    Both ``predict`` and ``predict_batch`` bump ``counts[frame.index]``.
    Returns a restore callback that removes the instrumentation.  Shared by
    the multi-query benchmark and test suite to assert the at-most-once-per-
    frame sharing guarantee.
    """
    original_predict = frame_filter.predict
    original_batch = frame_filter.predict_batch

    def counting_predict(frame):
        counts[frame.index] = counts.get(frame.index, 0) + 1
        return original_predict(frame)

    def counting_batch(frames):
        for frame in frames:
            counts[frame.index] = counts.get(frame.index, 0) + 1
        return original_batch(frames)

    frame_filter.predict = counting_predict
    frame_filter.predict_batch = counting_batch

    def restore():
        del frame_filter.predict
        del frame_filter.predict_batch

    return restore
