"""Parallel pipelined execution benchmark: the PR's wall-clock win.

One linear-filter workload (planned OD-CCF + OD-COF cascade over a
Jackson-profile stream) runs three ways: the sequential batched path (the
PR-1 engine, the baseline), and the parallel pipelined engine on the thread
and process backends.  Output parity is asserted bit for bit on every run;
the headline number is the wall-clock speedup of the best backend over the
sequential batched path.

The speedup bar (>= 2.5x at 4 workers) is asserted only when the machine
actually has >= 4 usable cores *and* the run uses >= 4 workers: parallel
wall-clock on a single-core container measures scheduler overhead, not the
engine (CI's benchmark job runs on 4-core runners, so the bar is enforced
there; the 2-worker CI smoke only checks parity and emits the JSON).
``PARALLEL_BENCH_WORKERS`` overrides the worker count.

The measurement is persisted to ``BENCH_parallel_pipeline.json`` when
``--json`` is given (schema: ``{name, params, wall_seconds,
simulated_seconds, speedup}``).
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import print_rows, write_bench_json
from repro.query import (
    ParallelConfig,
    PlannerConfig,
    QueryBuilder,
    QueryPlanner,
    StreamingQueryExecutor,
)

CHUNK = 16
ROUNDS = 3
SPEEDUP_BAR = 2.5


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _best_of(rounds, fn):
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def run(config, num_workers: int) -> dict[str, object]:
    from repro.experiments.context import get_context

    context = get_context("jackson", config)
    stream = context.dataset.test
    planner = QueryPlanner(
        context.filters, PlannerConfig(count_tolerance=1, location_dilation=1)
    )
    query = (
        QueryBuilder("pipeline")
        .count("car").at_least(1)
        .count().at_most(4)
        .build()
    )
    cascade = planner.plan(query)
    executor = StreamingQueryExecutor(context.reference_detector(seed_offset=800))

    baseline_s, baseline = _best_of(
        ROUNDS, lambda: executor.execute(query, stream, cascade, batch_size=CHUNK)
    )

    backends = {}
    for backend in ("thread", "process"):
        parallel = ParallelConfig(
            num_workers=num_workers,
            backend=backend,
            chunk_size=CHUNK,
            prefetch_depth=2,
        )
        wall_s, result = _best_of(
            ROUNDS,
            lambda p=parallel: executor.execute(query, stream, cascade, parallel=p),
        )
        backends[backend] = {
            "wall_s": round(wall_s, 3),
            "speedup": round(baseline_s / wall_s, 2),
            "parity": result.matched_frames == baseline.matched_frames,
            "calls_equal": (
                result.stats.simulated_cost.per_component_calls
                == baseline.stats.simulated_cost.per_component_calls
            ),
            "workers_used": result.stats.parallel.cost.num_workers,
            "balance": round(result.stats.parallel.cost.balance, 2),
        }

    best_backend = max(backends, key=lambda name: backends[name]["speedup"])
    return {
        "frames": len(stream),
        "chunk": CHUNK,
        "workers": num_workers,
        "cores": _usable_cores(),
        "cascade": cascade.describe(),
        "baseline_s": round(baseline_s, 3),
        "simulated_s": round(baseline.stats.simulated_seconds, 2),
        "backends": backends,
        "best_backend": best_backend,
        "best_speedup": backends[best_backend]["speedup"],
        "best_wall_s": backends[best_backend]["wall_s"],
    }


def format_rows(result: dict[str, object]) -> str:
    lines = [
        f"{result['frames']} frames, chunk {result['chunk']}, "
        f"{result['workers']} workers on {result['cores']} cores "
        f"(cascade {result['cascade']})",
        f"sequential batched baseline: {result['baseline_s']}s wall "
        f"({result['simulated_s']}s simulated)",
    ]
    for backend, row in result["backends"].items():
        lines.append(
            f"{backend:>8}: {row['wall_s']}s wall ({row['speedup']}x), "
            f"parity={row['parity']}, calls_equal={row['calls_equal']}, "
            f"{row['workers_used']} workers, balance {row['balance']}"
        )
    lines.append(
        f"best: {result['best_backend']} at {result['best_speedup']}x"
    )
    return "\n".join(lines)


def test_parallel_pipeline(benchmark, bench_config, pytestconfig):
    num_workers = int(os.environ.get("PARALLEL_BENCH_WORKERS", "4"))
    result = benchmark.pedantic(
        run, args=(bench_config, num_workers), rounds=1, iterations=1
    )
    print_rows("Parallel pipelined execution", format_rows(result))
    write_bench_json(
        pytestconfig,
        "parallel_pipeline",
        params={
            "frames": result["frames"],
            "chunk": result["chunk"],
            "workers": result["workers"],
            "cores": result["cores"],
            "backend": result["best_backend"],
            "baseline_wall_seconds": result["baseline_s"],
        },
        wall_seconds=result["best_wall_s"],
        simulated_seconds=result["simulated_s"],
        speedup=result["best_speedup"],
    )
    # Output is bit-identical to the sequential batched path on both backends,
    # regardless of the machine.
    for backend, row in result["backends"].items():
        assert row["parity"], (backend, row)
        assert row["calls_equal"], (backend, row)
    # The wall-clock bar only means something with real cores behind the
    # workers (see module docstring).
    if result["cores"] >= 4 and result["workers"] >= 4:
        assert result["best_speedup"] >= SPEEDUP_BAR, result
