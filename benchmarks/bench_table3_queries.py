"""Table III benchmark: filtered query execution (q1–q7) vs brute-force detection."""

from __future__ import annotations

from benchmarks.conftest import bench_wall_seconds, print_rows, write_bench_json
from repro.experiments import table3


def test_table3_query_execution(benchmark, bench_config, pytestconfig):
    rows = benchmark.pedantic(table3.run, args=(bench_config,), rounds=1, iterations=1)
    print_rows("Table III — query execution with filter cascades", table3.format_rows(rows))
    filtered_s = sum(row["filtered_time_s"] for row in rows)
    brute_s = sum(row["brute_force_time_s"] for row in rows)
    write_bench_json(
        pytestconfig,
        "table3_queries",
        params={"queries": len(rows)},
        wall_seconds=bench_wall_seconds(benchmark),
        simulated_seconds=filtered_s,
        speedup=brute_s / filtered_s if filtered_s else None,
    )
    assert len(rows) == 7
    for row in rows:
        # The cascade never fabricates matches (verification uses the same
        # detector as the brute-force baseline), so precision is always 1 and
        # accuracy equals recall; the paper reports (near) 100 % accuracy.
        assert row["accuracy"] >= 0.85, row
        # Filtering must be faster than brute force under the paper's latency model.
        assert row["filtered_time_s"] < row["brute_force_time_s"]
        assert row["speedup"] > 1.0
    # At least one highly selective spatial query reaches an order of magnitude.
    assert max(row["speedup"] for row in rows) >= 10.0
