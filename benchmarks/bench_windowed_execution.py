"""Windowed + aggregate execution benchmark (the unified execution path).

Demonstrates the two halves of the windowed/aggregate engine end to end:

* a ``WINDOW HOPPING`` query — written with the clause on *either* side of
  ``WHERE`` — parses, plans and executes through
  ``StreamingQueryExecutor``, producing per-window match sets whose union
  equals the un-windowed answer on the same frames, with every frame
  filtered once despite the 2x window overlap;
* ``execute_aggregate`` reproduces ``AggregateMonitor.estimate``'s
  control-variate numbers exactly (same seed, same estimates) while the
  filter side of the sample batch runs as a single vectorized
  ``predict_batch`` call instead of per-frame ``predict`` calls.
"""

from __future__ import annotations

from dataclasses import replace

from benchmarks.conftest import bench_wall_seconds, print_rows, write_bench_json
from repro.aggregates import AggregateMonitor, AggregateQuerySpec, query_indicator_control
from repro.experiments.context import get_context
from repro.query import (
    PlannerConfig,
    QueryBuilder,
    QueryPlanner,
    StreamingQueryExecutor,
    parse_query,
)

BATCH_SIZE = 16
WINDOW_CLAUSE = "WINDOW HOPPING (SIZE 40, ADVANCE BY 20)"
WHERE_CLAUSE = "WHERE COUNT(car) >= 1 AND COUNT(*) >= 1"
FROM_CLAUSE = (
    "SELECT cameraID, frameID "
    "FROM (PROCESS inputVideo PRODUCE cameraID, frameID, vehBox1 USING VehDetector)"
)


class _CachedStream:
    """Pre-rendered stream stand-in: executor timing without rendering cost."""

    def __init__(self, stream, num_frames: int) -> None:
        count = min(num_frames, len(stream))
        self._frames = [stream.frame(index) for index in range(count)]

    def __len__(self) -> int:
        return len(self._frames)

    def frame(self, index: int):
        return self._frames[index]


def _count_filter_calls(frame_filter, counts):
    """Instrument one filter instance; returns a restore callback."""
    original_predict = frame_filter.predict
    original_batch = frame_filter.predict_batch

    def counting_predict(frame):
        counts["predict"] += 1
        return original_predict(frame)

    def counting_batch(frames):
        counts["predict_batch"] += 1
        counts["batched_frames"] += len(frames)
        return original_batch(frames)

    frame_filter.predict = counting_predict
    frame_filter.predict_batch = counting_batch

    def restore():
        del frame_filter.predict
        del frame_filter.predict_batch

    return restore


def run(config) -> dict[str, object]:
    context = get_context("jackson", config)
    stream = _CachedStream(context.dataset.test, len(context.dataset.test))

    # Parse the windowed query with the WINDOW clause in both positions.
    window_first = parse_query(f"{FROM_CLAUSE} {WINDOW_CLAUSE} {WHERE_CLAUSE}", name="windowed")
    where_first = parse_query(f"{FROM_CLAUSE} {WHERE_CLAUSE} {WINDOW_CLAUSE}", name="windowed")
    query = window_first
    cascade = QueryPlanner(context.filters, PlannerConfig(count_tolerance=1)).plan(query)
    executor = StreamingQueryExecutor(context.reference_detector(seed_offset=500))

    windowed = executor.execute(query, stream, cascade, batch_size=BATCH_SIZE)
    flat = executor.execute(
        replace(query, window=None), stream, cascade, batch_size=BATCH_SIZE
    )
    union = set()
    for window in windowed.windows:
        union.update(window.matched_frames)

    window_rows = [
        {
            "window": f"[{w.bounds.start}, {w.bounds.stop})",
            "scanned": w.stats.frames_scanned,
            "passed": w.stats.frames_passed_filters,
            "matches": w.num_matches,
        }
        for w in windowed.windows
    ]

    # Aggregate estimation through the unified path, with instrumented
    # filter calls to show the batched fast path.
    agg_query = QueryBuilder("cars_present").count("car").at_least(1).build()
    spec = AggregateQuerySpec.from_query(agg_query, [query_indicator_control(agg_query)])
    agg_cascade = QueryPlanner({"od": context.od_filter}).plan(agg_query)
    counts = {"predict": 0, "predict_batch": 0, "batched_frames": 0}
    restore = _count_filter_calls(context.od_filter, counts)
    try:
        agg_result = StreamingQueryExecutor(
            context.reference_detector(seed_offset=900)
        ).execute_aggregate(
            spec, context.dataset.test, agg_cascade, sample_size=50, seed=11
        )
    finally:
        restore()
    monitor = AggregateMonitor(
        detector=context.reference_detector(seed_offset=900),
        frame_filter=context.od_filter,
        seed=11,
    )
    reference = monitor.estimate(spec, context.dataset.test, 50)
    executed = agg_result.reports[0]

    return {
        "windows": window_rows,
        "execution": {
            "num_windows": windowed.num_windows,
            "frames_scanned": windowed.stats.frames_scanned,
            "filter_invocations": windowed.stats.filter_invocations,
            "flat_filter_invocations": flat.stats.filter_invocations,
            "union_equals_flat": union == set(flat.matched_frames),
            "parse_positions_agree": (
                window_first.window == where_first.window
                and window_first.predicates == where_first.predicates
            ),
            "wall_clock_s": round(windowed.stats.wall_clock_seconds, 3),
        },
        "aggregate": {
            "cascade": agg_result.cascade_description,
            "cv_mean": executed.control_variate.mean,
            "reference_cv_mean": reference.control_variate.mean,
            "plain_mean": executed.plain.mean,
            "reference_plain_mean": reference.plain.mean,
            # An indicator control can explain everything on a small sample;
            # cap like table4 so the printed factor stays readable.
            "variance_reduction": round(min(executed.variance_reduction, 1000.0), 1),
            "filter_calls": dict(counts),
        },
    }


def format_rows(result: dict[str, object]) -> str:
    lines = [f"{'window':<12}{'scanned':>9}{'passed':>8}{'matches':>9}"]
    for row in result["windows"]:
        lines.append(
            f"{row['window']:<12}{row['scanned']:>9}{row['passed']:>8}{row['matches']:>9}"
        )
    execution = result["execution"]
    lines.append(
        f"{execution['num_windows']} windows over {execution['frames_scanned']} frames, "
        f"{execution['filter_invocations']} filter invocations "
        f"(= {execution['flat_filter_invocations']} un-windowed, despite 2x overlap), "
        f"union_equals_flat={execution['union_equals_flat']}"
    )
    aggregate = result["aggregate"]
    lines.append(
        f"aggregate via {aggregate['cascade']}: cv_mean {aggregate['cv_mean']:.4f} "
        f"(monitor: {aggregate['reference_cv_mean']:.4f}), "
        f"var.red. {aggregate['variance_reduction']}x, filter calls {aggregate['filter_calls']}"
    )
    return "\n".join(lines)


def test_windowed_and_aggregate_execution(benchmark, bench_config, pytestconfig):
    result = benchmark.pedantic(run, args=(bench_config,), rounds=1, iterations=1)
    print_rows("Windowed + aggregate execution", format_rows(result))
    write_bench_json(
        pytestconfig,
        "windowed_execution",
        params={
            "num_windows": result["execution"]["num_windows"],
            "frames_scanned": result["execution"]["frames_scanned"],
            "variance_reduction": result["aggregate"]["variance_reduction"],
        },
        wall_seconds=bench_wall_seconds(benchmark),
    )
    execution = result["execution"]
    # WINDOW before or after WHERE parses to the same query.
    assert execution["parse_positions_agree"]
    # Per-window match sets partition the flat answer; overlapping windows
    # share the per-frame filter work (no extra invocations over a flat run).
    assert execution["union_equals_flat"]
    assert execution["filter_invocations"] == execution["flat_filter_invocations"]
    assert execution["num_windows"] >= 2
    aggregate = result["aggregate"]
    # Same seed -> exactly the same control-variate estimates as the monitor.
    assert aggregate["cv_mean"] == aggregate["reference_cv_mean"]
    assert aggregate["plain_mean"] == aggregate["reference_plain_mean"]
    # The 50-frame sample ran as one vectorized batch, zero per-frame calls.
    assert aggregate["filter_calls"]["predict"] == 0
    assert aggregate["filter_calls"]["predict_batch"] == 1
    assert aggregate["filter_calls"]["batched_frames"] == 50
