"""Sanitizer overhead benchmark: instrumented vs clean parallel wall-clock.

The sanitizers' design promise is *zero overhead when off* (every hook is a
``None`` module global behind an ``is not None`` guard — INV007) and
tolerable overhead when on (lockset bookkeeping per critical section, a
finiteness scan per layer output).  This benchmark measures both sides on
the same 2-worker thread-backend workload as the parallel pipeline
benchmark: a clean run (``sanitize=None``), a fully instrumented run
(``sanitize="race,numeric"``), and their ratio — asserting output parity
across all runs on every round.

The headline JSON (``BENCH_sanitizer_overhead.json``) reports the
instrumented wall-clock; ``params.overhead_ratio`` carries instrumented /
clean.  The ratio is *informational* on shared CI runners (wall-clock noise
at sub-second scales dwarfs the hook cost); the hard gates are the parity
asserts and the bound that instrumented runs finish at all without findings.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import print_rows, write_bench_json
from repro.query import (
    ParallelConfig,
    PlannerConfig,
    QueryBuilder,
    QueryPlanner,
    StreamingQueryExecutor,
)

CHUNK = 16
ROUNDS = 3
SANITIZE = "race,numeric"


def _best_of(rounds, fn):
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def run(config, num_workers: int) -> dict[str, object]:
    from repro.experiments.context import get_context

    context = get_context("jackson", config)
    stream = context.dataset.test
    planner = QueryPlanner(
        context.filters, PlannerConfig(count_tolerance=1, location_dilation=1)
    )
    query = (
        QueryBuilder("sanitizer_overhead")
        .count("car").at_least(1)
        .count().at_most(4)
        .build()
    )
    cascade = planner.plan(query)
    executor = StreamingQueryExecutor(context.reference_detector(seed_offset=900))

    def parallel_config(sanitize):
        return ParallelConfig(
            num_workers=num_workers,
            backend="thread",
            chunk_size=CHUNK,
            prefetch_depth=2,
            sanitize=sanitize,
        )

    clean_s, clean = _best_of(
        ROUNDS,
        lambda: executor.execute(
            query, stream, cascade, parallel=parallel_config(None)
        ),
    )
    instrumented_s, instrumented = _best_of(
        ROUNDS,
        lambda: executor.execute(
            query, stream, cascade, parallel=parallel_config(SANITIZE)
        ),
    )
    report = instrumented.stats.sanitizer_report
    return {
        "frames": len(stream),
        "chunk": CHUNK,
        "workers": num_workers,
        "sanitize": SANITIZE,
        "clean_s": round(clean_s, 3),
        "instrumented_s": round(instrumented_s, 3),
        "overhead_ratio": round(instrumented_s / clean_s, 2) if clean_s > 0 else None,
        "parity": instrumented.matched_frames == clean.matched_frames,
        "calls_equal": (
            instrumented.stats.simulated_cost.per_component_calls
            == clean.stats.simulated_cost.per_component_calls
        ),
        "findings": list(report.codes) if report is not None else None,
        "clean_report_absent": clean.stats.sanitizer_report is None,
    }


def format_rows(result: dict[str, object]) -> str:
    return "\n".join(
        [
            f"{result['frames']} frames, chunk {result['chunk']}, "
            f"{result['workers']} workers, sanitize={result['sanitize']}",
            f"clean:        {result['clean_s']}s wall",
            f"instrumented: {result['instrumented_s']}s wall "
            f"({result['overhead_ratio']}x)",
            f"parity={result['parity']}, calls_equal={result['calls_equal']}, "
            f"findings={result['findings']}",
        ]
    )


def test_sanitizer_overhead(benchmark, bench_config, pytestconfig):
    num_workers = int(os.environ.get("PARALLEL_BENCH_WORKERS", "2"))
    result = benchmark.pedantic(
        run, args=(bench_config, num_workers), rounds=1, iterations=1
    )
    print_rows("Sanitizer overhead", format_rows(result))
    write_bench_json(
        pytestconfig,
        "sanitizer_overhead",
        params={
            "frames": result["frames"],
            "chunk": result["chunk"],
            "workers": result["workers"],
            "sanitize": result["sanitize"],
            "clean_wall_seconds": result["clean_s"],
            "overhead_ratio": result["overhead_ratio"],
        },
        wall_seconds=result["instrumented_s"],
        simulated_seconds=None,
        speedup=None,
    )
    # Hard gates: the instrumented scan finds nothing on the honest engine,
    # produces bit-identical output, and sanitize=None attaches no report.
    assert result["parity"] and result["calls_equal"]
    assert result["findings"] == []
    assert result["clean_report_absent"]
