"""Batched vs per-frame execution benchmark (the PR's wall-clock win).

Measures, on pre-rendered frames (so rendering cost cancels out of the
comparison):

* filter throughput — vectorized ``predict_batch`` vs the per-frame
  ``predict`` loop for the linear branch filters (the acceptance bar is a
  >= 3x wall-clock win for the OD / IC branches);
* end-to-end executor throughput — ``StreamingQueryExecutor`` in batched
  mode vs sequential mode on a planned cascade, with identical matched
  frames and identical simulated cost accounting.
"""

from __future__ import annotations

import time

from benchmarks.conftest import print_rows, write_bench_json
from repro.experiments.context import get_context
from repro.query import PlannerConfig, QueryBuilder, QueryPlanner, StreamingQueryExecutor

# Chunk size chosen for cache locality: a 16-frame chunk keeps the batched
# int16/float64 intermediates inside the last-level cache, which measures
# faster than both per-frame calls and one giant whole-stream batch.
BATCH_SIZE = 16
NUM_FRAMES = 160
ROUNDS = 3


class _CachedStream:
    """Pre-rendered stream stand-in: executor timing without rendering cost."""

    def __init__(self, stream, num_frames: int) -> None:
        count = min(num_frames, len(stream))
        self._frames = [stream.frame(index) for index in range(count)]

    def __len__(self) -> int:
        return len(self._frames)

    def frame(self, index: int):
        return self._frames[index]


def _best_of(rounds, fn):
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _predict_chunked(frame_filter, frames):
    for start in range(0, len(frames), BATCH_SIZE):
        frame_filter.predict_batch(frames[start : start + BATCH_SIZE])


def _filter_rows(context, frames):
    rows = []
    for key in ("od", "ic", "od_cof"):
        frame_filter = context.filters[key]
        frame_filter.predict(frames[0])  # warm-up
        _predict_chunked(frame_filter, frames)
        per_frame_s = _best_of(
            ROUNDS, lambda f=frame_filter: [f.predict(frame) for frame in frames]
        )
        batched_s = _best_of(ROUNDS, lambda f=frame_filter: _predict_chunked(f, frames))
        rows.append(
            {
                "filter": frame_filter.name,
                "frames": len(frames),
                "per_frame_fps": round(len(frames) / per_frame_s, 1),
                "batched_fps": round(len(frames) / batched_s, 1),
                "speedup": round(per_frame_s / batched_s, 2),
            }
        )
    return rows


def run(config) -> dict[str, object]:
    context = get_context("jackson", config)
    stream = _CachedStream(context.dataset.test, NUM_FRAMES)
    frames = [stream.frame(index) for index in range(len(stream))]
    filter_rows = _filter_rows(context, frames)

    query = (
        QueryBuilder("bench")
        .count("car").equals(1)
        .count().at_least(1)
        .spatial("car").left_of("person")
        .build()
    )
    planner = QueryPlanner(context.filters, PlannerConfig(count_tolerance=1, location_dilation=1))
    cascade = planner.plan(query)
    executor = StreamingQueryExecutor(context.reference_detector(seed_offset=500))

    sequential = executor.execute(query, stream, cascade)
    sequential_s = _best_of(
        ROUNDS, lambda: executor.execute(query, stream, cascade)
    )
    batched = executor.execute(query, stream, cascade, batch_size=BATCH_SIZE)
    batched_s = _best_of(
        ROUNDS, lambda: executor.execute(query, stream, cascade, batch_size=BATCH_SIZE)
    )
    return {
        "filters": filter_rows,
        "executor": {
            "frames": len(stream),
            "batch_size": BATCH_SIZE,
            "sequential_s": round(sequential_s, 3),
            "batched_s": round(batched_s, 3),
            "speedup": round(sequential_s / batched_s, 2),
            "matches_equal": batched.matched_frames == sequential.matched_frames,
            "calls_equal": (
                batched.stats.simulated_cost.per_component_calls
                == sequential.stats.simulated_cost.per_component_calls
            ),
        },
    }


def format_rows(result: dict[str, object]) -> str:
    lines = [f"{'filter':<22}{'per-frame fps':>14}{'batched fps':>13}{'speedup':>9}"]
    for row in result["filters"]:
        lines.append(
            f"{row['filter']:<22}{row['per_frame_fps']:>14}{row['batched_fps']:>13}"
            f"{row['speedup']:>9}"
        )
    executor = result["executor"]
    lines.append(
        f"executor ({executor['frames']} frames, chunk {executor['batch_size']}): "
        f"sequential {executor['sequential_s']}s -> batched {executor['batched_s']}s "
        f"({executor['speedup']}x), matches_equal={executor['matches_equal']}"
    )
    return "\n".join(lines)


def test_batch_executor_throughput(benchmark, bench_config, pytestconfig):
    result = benchmark.pedantic(run, args=(bench_config,), rounds=1, iterations=1)
    print_rows("Batched filter-cascade execution", format_rows(result))
    write_bench_json(
        pytestconfig,
        "batch_executor",
        params={
            "frames": result["executor"]["frames"],
            "batch_size": result["executor"]["batch_size"],
        },
        wall_seconds=result["executor"]["batched_s"],
        speedup=result["executor"]["speedup"],
    )
    by_filter = {row["filter"]: row for row in result["filters"]}
    # The acceptance bar: >= 3x wall-clock throughput on the linear branch
    # filters (OD / IC); the pooled-count filter does less per-frame work, so
    # its amortisation gain is smaller.
    assert by_filter["od_filter"]["speedup"] >= 3.0, by_filter
    assert by_filter["ic_filter"]["speedup"] >= 3.0, by_filter
    assert by_filter["od_cof"]["speedup"] >= 2.0, by_filter
    executor = result["executor"]
    assert executor["matches_equal"] and executor["calls_equal"]
    # End to end the (shared) detector work dilutes the ratio; locally the
    # batched executor still measures ~4x.
    assert executor["speedup"] >= 1.3, executor
