"""Standing-query service soak benchmark: sustained ingest under backpressure.

Two live streams, four standing queries each (eight concurrent), ingested by
two shard workers under the ``block`` policy with a bounded four-chunk queue.
The benchmark replays the Jackson test stream cyclically (frames re-indexed
so the watermark keeps advancing) and reports sustained ingest throughput in
frames per wall second.

The assertions pin the service's soak contract: queue depth stays bounded by
the configured capacity, nothing is dropped under ``block``, every ingested
chunk is processed, and every standing query scanned every frame of its
stream exactly once.
"""

from __future__ import annotations

import dataclasses
import time

from benchmarks.conftest import print_rows, write_bench_json
from repro.query import PlannerConfig, QueryBuilder, QueryPlanner
from repro.service import QueryService, StreamConfig

STREAMS = ("north", "south")
QUERIES_PER_STREAM = 4
CHUNK_SIZE = 8
QUEUE_CHUNKS = 4
TOTAL_FRAMES = 480
FEED_BATCH = 24


def _looped_frames(stream, total):
    base = [stream.frame(index) for index in range(len(stream))]
    return [
        dataclasses.replace(base[index % len(base)], index=index)
        for index in range(total)
    ]


def run(config) -> dict[str, object]:
    from repro.experiments.context import get_context

    context = get_context("jackson", config)
    planner = QueryPlanner(context.filters, PlannerConfig(count_tolerance=1))

    service = QueryService()
    handles: dict[str, list[int]] = {}
    for name in STREAMS:
        service.attach_stream(
            name,
            context.reference_detector(seed_offset=800),
            StreamConfig(
                chunk_size=CHUNK_SIZE, queue_chunks=QUEUE_CHUNKS, policy="block"
            ),
        )
        handles[name] = []
        for position in range(QUERIES_PER_STREAM):
            query = (
                QueryBuilder(f"{name}_q{position}")
                .count("car").at_least(1 + position % 2)
                .build()
            )
            handles[name].append(service.register(name, query, planner.plan(query)))

    frames = _looped_frames(context.dataset.test, TOTAL_FRAMES)
    service.start()
    ingest_start = time.perf_counter()
    for start in range(0, TOTAL_FRAMES, FEED_BATCH):
        batch = frames[start : start + FEED_BATCH]
        for name in STREAMS:
            service.feed(name, batch)
    service.stop(drain=True)
    wall_seconds = time.perf_counter() - ingest_start

    stats = service.stats()
    per_stream = {name: stats.streams[name] for name in STREAMS}
    results = service.close()

    simulated_ms = sum(
        results[handle].stats.simulated_cost.total_ms
        for name in STREAMS
        for handle in handles[name]
    )
    frames_total = TOTAL_FRAMES * len(STREAMS)
    return {
        "streams": len(STREAMS),
        "standing_queries": len(STREAMS) * QUERIES_PER_STREAM,
        "frames": frames_total,
        "wall_s": round(wall_seconds, 3),
        "frames_per_s": round(frames_total / wall_seconds, 1),
        "simulated_s": round(simulated_ms / 1000.0, 2),
        "per_stream": {
            name: {
                "chunks_ingested": shard.chunks_ingested,
                "chunks_processed": shard.chunks_processed,
                "queue_high_water": shard.queue_high_water,
                "queue_depth": shard.queue_depth,
                "dropped_chunks": shard.dropped_chunks,
                "watermark": shard.watermark,
            }
            for name, shard in per_stream.items()
        },
        "frames_scanned": {
            name: [results[handle].stats.frames_scanned for handle in handles[name]]
            for name in STREAMS
        },
    }


def format_rows(result: dict[str, object]) -> str:
    lines = [
        f"{'stream':<8}{'ingested':>9}{'processed':>10}{'hiwater':>8}"
        f"{'depth':>6}{'dropped':>8}{'watermark':>10}"
    ]
    for name, shard in result["per_stream"].items():
        lines.append(
            f"{name:<8}{shard['chunks_ingested']:>9}{shard['chunks_processed']:>10}"
            f"{shard['queue_high_water']:>8}{shard['queue_depth']:>6}"
            f"{shard['dropped_chunks']:>8}{shard['watermark']:>10}"
        )
    lines.append(
        f"{result['standing_queries']} standing queries over {result['streams']} "
        f"streams: {result['frames']} frames in {result['wall_s']}s "
        f"({result['frames_per_s']} frames/s sustained)"
    )
    return "\n".join(lines)


def test_service_throughput_soak(benchmark, bench_config, pytestconfig):
    result = benchmark.pedantic(run, args=(bench_config,), rounds=1, iterations=1)
    print_rows("Standing-query service soak (2 streams x 4 queries)", format_rows(result))
    write_bench_json(
        pytestconfig,
        "service_throughput",
        params={
            "streams": result["streams"],
            "standing_queries": result["standing_queries"],
            "frames": result["frames"],
            "chunk_size": CHUNK_SIZE,
            "queue_chunks": QUEUE_CHUNKS,
            "policy": "block",
        },
        wall_seconds=result["wall_s"],
        simulated_seconds=result["simulated_s"],
    )
    for shard in result["per_stream"].values():
        # Bounded queue under block: never deeper than the configured cap,
        # empty after drain, nothing dropped, everything processed.
        assert shard["queue_high_water"] <= QUEUE_CHUNKS
        assert shard["queue_depth"] == 0
        assert shard["dropped_chunks"] == 0
        assert shard["chunks_processed"] == shard["chunks_ingested"]
        assert shard["watermark"] == TOTAL_FRAMES - 1
    # Every standing query scanned its stream exactly once, end to end.
    for scanned in result["frames_scanned"].values():
        assert scanned == [TOTAL_FRAMES] * QUERIES_PER_STREAM
