"""Static-analysis benchmark: dead-step pruning + provably-empty short circuit.

Two claims of the analyzer layer are pinned here:

1. **Dead-step pruning.**  At the default ``count_tolerance=1`` a
   ``COUNT(car) >= 1`` CCF step can never reject a frame, so the analyzer
   drops it at plan time.  Executing the optimized plan must match the raw
   ``analyze=False`` plan frame for frame while spending measurably less
   simulated filter cost (the OD filter never runs).

2. **Provably-empty short circuit.**  A contradictory query
   (``COUNT(car) >= 3 AND COUNT(car) <= 1``) plans to an empty-scan cascade
   that renders ZERO frames — counted by wrapping ``stream.frame`` — and
   invokes neither filters nor the detector, where the same query without
   analysis would pay a full scan.
"""

from __future__ import annotations

from benchmarks.conftest import bench_wall_seconds, print_rows, write_bench_json
from repro.detection import ReferenceDetector
from repro.query import (
    PlannerConfig,
    QueryBuilder,
    QueryPlanner,
    StreamingQueryExecutor,
)


def _executor(class_names) -> StreamingQueryExecutor:
    return StreamingQueryExecutor(ReferenceDetector(class_names=class_names, seed=900))


def _count_renders(stream):
    """Wrap ``stream.frame`` to count decodes; returns (counts, restore)."""
    rendered = []
    original = stream.frame

    def counting_frame(index):
        rendered.append(index)
        return original(index)

    stream.frame = counting_frame

    def restore():
        del stream.frame

    return rendered, restore


def run(config) -> dict[str, object]:
    from repro.experiments.context import get_context

    context = get_context("jackson", config)
    stream = context.dataset.test
    class_names = context.dataset.class_names
    planner = QueryPlanner(
        context.filters, PlannerConfig(count_tolerance=1, location_dilation=1)
    )

    # --- dead-step pruning ------------------------------------------------
    live = (
        QueryBuilder("prunable")
        .count("car").at_least(1)   # dead at tolerance 1: predicted >= 0
        .total_count().at_most(4)   # live: AT_MOST always can reject
        .build()
    )
    raw_plan = planner.plan(live, analyze=False)
    pruned_plan = planner.plan(live)

    raw = _executor(class_names).execute(live, stream, raw_plan, batch_size=16)
    pruned = _executor(class_names).execute(live, stream, pruned_plan, batch_size=16)

    # --- provably-empty short circuit ------------------------------------
    impossible = (
        QueryBuilder("impossible")
        .count("car").at_least(3)
        .count("car").at_most(1)
        .build()
    )
    empty_plan = planner.plan(impossible)
    rendered, restore = _count_renders(stream)
    try:
        empty = _executor(class_names).execute(impossible, stream, empty_plan)
    finally:
        restore()

    return {
        "frames": len(stream),
        "raw_steps": len(raw_plan),
        "pruned_steps": len(pruned_plan),
        "parity": pruned.matched_frames == raw.matched_frames,
        "matches": pruned.num_matches,
        "raw_filter_invocations": raw.stats.filter_invocations,
        "pruned_filter_invocations": pruned.stats.filter_invocations,
        "raw_s": round(raw.stats.simulated_seconds, 3),
        "pruned_s": round(pruned.stats.simulated_seconds, 3),
        "prune_speedup": round(
            raw.stats.simulated_cost.total_ms / pruned.stats.simulated_cost.total_ms, 3
        ),
        "empty_provable": empty_plan.provably_empty,
        "empty_codes": sorted({d.code for d in empty_plan.diagnostics}),
        "empty_frames_rendered": len(rendered),
        "empty_frames_scanned": empty.stats.frames_scanned,
        "empty_detector_invocations": empty.stats.detector_invocations,
        "empty_wall_s": round(empty.stats.wall_clock_seconds, 6),
    }


def format_rows(result: dict[str, object]) -> str:
    lines = [
        f"{result['frames']} frames, {result['matches']} matches "
        f"(parity: {result['parity']})",
        f"pruning: {result['raw_steps']} -> {result['pruned_steps']} steps, "
        f"{result['raw_filter_invocations']} -> {result['pruned_filter_invocations']} "
        f"filter invocations, simulated {result['raw_s']}s -> {result['pruned_s']}s "
        f"({result['prune_speedup']}x)",
        f"provably empty ({', '.join(result['empty_codes'])}): "
        f"{result['empty_frames_rendered']} frames rendered, "
        f"{result['empty_frames_scanned']} scanned, "
        f"{result['empty_detector_invocations']} detector calls",
    ]
    return "\n".join(lines)


def test_static_prune(benchmark, bench_config, pytestconfig):
    result = benchmark.pedantic(run, args=(bench_config,), rounds=1, iterations=1)
    print_rows("Static analysis: dead-step pruning + empty short circuit", format_rows(result))
    write_bench_json(
        pytestconfig,
        "static_prune",
        params={
            "frames": result["frames"],
            "raw_steps": result["raw_steps"],
            "pruned_steps": result["pruned_steps"],
            "empty_frames_rendered": result["empty_frames_rendered"],
        },
        wall_seconds=bench_wall_seconds(benchmark),
        simulated_seconds=result["pruned_s"],
        speedup=result["prune_speedup"],
    )
    # Pruning removed a step and is invisible in the results.
    assert result["pruned_steps"] < result["raw_steps"]
    assert result["parity"]
    assert result["pruned_filter_invocations"] < result["raw_filter_invocations"]
    # The dead step's filter cost is real savings.
    assert result["prune_speedup"] > 1.0
    # The contradictory query never touches a frame.
    assert result["empty_provable"]
    assert result["empty_frames_rendered"] == 0
    assert result["empty_frames_scanned"] == 0
    assert result["empty_detector_invocations"] == 0
    assert "QA001" in result["empty_codes"] and "PL003" in result["empty_codes"]
