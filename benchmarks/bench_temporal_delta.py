"""Temporal-coherence benchmark: delta gating + NN inference fast path.

Two claims are pinned here:

1. **Delta execution.**  On a low-motion surveillance stream (parked objects
   plus one 80-frame event) the temporal layer cuts the simulated
   detector+filter cost by >= 3x while exact mode keeps the matched frames
   bit-identical to the non-temporal executor.  The approximate mode runs
   the same configuration without verification and reports its reuse rate.

2. **Inference fast path.**  ``NeuralBranchFilter.predict_batch`` with the
   network in eval mode (no backward caches, float32 activations, reused
   im2col buffers) is >= 1.5x faster in wall-clock than the float64
   training-mode forward, with matching count predictions.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import bench_wall_seconds, print_rows, write_bench_json
from repro.detection import ReferenceDetector
from repro.filters.neural import NeuralBranchFilter, build_branch_network
from repro.query import (
    PlannerConfig,
    QueryBuilder,
    QueryPlanner,
    StreamingQueryExecutor,
    TemporalConfig,
)
from repro.spatial.geometry import Point
from repro.video.datasets import JACKSON_PROFILE
from repro.video.motion import ParkedMotion
from repro.video.objects import TrackedObject, default_class_registry
from repro.video.renderer import FrameRenderer, RendererConfig
from repro.video.scene import Scene, SceneConfig
from repro.video.stream import VideoStream

NUM_FRAMES = 240
EVENT_START = 80
EVENT_STOP = 160
# The renderer's per-frame object shading flickers block means by up to ~20
# levels; the event boundaries jump by ~50, so 30 separates them cleanly.
TEMPORAL = dict(delta_threshold=30.0, max_stride=16, keyframe_interval=24)


def build_low_motion_stream(seed: int = 23) -> VideoStream:
    """A mostly-static camera: two parked cars + a person, one parked-car event.

    This is the regime the paper's monitoring queries live in — long stable
    stretches, occasional events — and the best case the temporal layer is
    designed for: pixels only change at the two event boundaries (plus
    per-frame sensor noise and shading flicker).
    """
    registry = default_class_registry()
    config = SceneConfig(
        frame_width=448,
        frame_height=448,
        num_frames=NUM_FRAMES,
        mean_count=3.0,
        std_count=0.0,
        count_autocorrelation=0.9,
        class_mix=JACKSON_PROFILE.classes,
        max_count=4,
        seed=seed,
    )
    car = registry["car"]
    person = registry["person"]
    tracks = [
        TrackedObject(0, car, 46.0, 24.0, "blue", 0, NUM_FRAMES, ParkedMotion(Point(120, 200))),
        TrackedObject(1, car, 42.0, 22.0, "white", 0, NUM_FRAMES, ParkedMotion(Point(310, 260))),
        TrackedObject(2, person, 14.0, 38.0, "red", 0, NUM_FRAMES, ParkedMotion(Point(220, 390))),
        TrackedObject(
            3, car, 44.0, 23.0, "black", EVENT_START, EVENT_STOP, ParkedMotion(Point(210, 140))
        ),
    ]
    active = [
        [track.track_id for track in tracks if track.alive_at(index)]
        for index in range(NUM_FRAMES)
    ]
    scene = Scene(config=config, tracks=tracks, active_tracks_per_frame=active)
    renderer = FrameRenderer(RendererConfig(output_size=112, seed=seed))
    return VideoStream(scene=scene, renderer=renderer, name="low-motion")


def _time_predict_batch(frame_filter, frames, rounds: int = 5) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        frame_filter.predict_batch(frames)
        best = min(best, time.perf_counter() - started)
    return best


def run(config) -> dict[str, object]:
    from repro.experiments.context import get_context

    context = get_context("jackson", config)
    stream = build_low_motion_stream()
    planner = QueryPlanner(
        context.filters, PlannerConfig(count_tolerance=1, location_dilation=1)
    )
    query = QueryBuilder("event").count("car").at_least(3).build()
    cascade = planner.plan(query)

    def executor():
        return StreamingQueryExecutor(
            ReferenceDetector(class_names=("car", "person"), seed=900)
        )

    baseline = executor().execute(query, stream, cascade)
    exact = executor().execute(
        query, stream, cascade, temporal=TemporalConfig(exact=True, **TEMPORAL)
    )
    approximate = executor().execute(
        query, stream, cascade, temporal=TemporalConfig(exact=False, **TEMPORAL)
    )

    # --- NN inference fast path -----------------------------------------
    network = build_branch_network(num_classes=2, image_size=56, grid_size=14, seed=5)
    neural = NeuralBranchFilter(
        network,
        ("car", "person"),
        image_size=56,
        grid_size=14,
        frame_width=stream.frame_width,
        frame_height=stream.frame_height,
    )
    nn_frames = [stream.frame(index) for index in range(24)]
    network.set_training(True)
    train_predictions = neural.predict_batch(nn_frames)
    train_seconds = _time_predict_batch(neural, nn_frames)
    network.set_training(False)
    infer_predictions = neural.predict_batch(nn_frames)
    infer_seconds = _time_predict_batch(neural, nn_frames)

    return {
        "frames": NUM_FRAMES,
        "matches": exact.num_matches,
        "exact_parity": exact.matched_frames == baseline.matched_frames,
        "baseline_s": round(baseline.stats.simulated_seconds, 2),
        "exact_s": round(exact.stats.simulated_seconds, 2),
        "cost_reduction": round(
            baseline.stats.simulated_cost.total_ms / exact.stats.simulated_cost.total_ms, 2
        ),
        "exact_reuse_rate": round(exact.temporal.reuse_rate, 3),
        "exact_mismatches": exact.temporal.reuse_mismatches,
        "approx_reuse_rate": round(approximate.temporal.reuse_rate, 3),
        "approx_parity": approximate.matched_frames == baseline.matched_frames,
        "approx_computed": approximate.temporal.frames_computed,
        "approx_skipped": approximate.temporal.frames_skipped,
        "max_stride_used": approximate.temporal.max_stride_used,
        "reused_calls": exact.stats.simulated_cost.total_reused,
        "computed_calls": exact.stats.simulated_cost.total_calls,
        "nn_train_ms": round(train_seconds * 1000, 1),
        "nn_infer_ms": round(infer_seconds * 1000, 1),
        "nn_speedup": round(train_seconds / infer_seconds, 2),
        "nn_counts_equal": all(
            a.class_counts == b.class_counts
            for a, b in zip(train_predictions, infer_predictions)
        ),
    }


def format_rows(result: dict[str, object]) -> str:
    lines = [
        f"{result['frames']} frames, {result['matches']} matches "
        f"(exact parity: {result['exact_parity']})",
        f"simulated cost {result['baseline_s']}s baseline vs {result['exact_s']}s "
        f"temporal ({result['cost_reduction']}x), reuse rate "
        f"{result['exact_reuse_rate']} with {result['exact_mismatches']} verified mismatches",
        f"calls: {result['computed_calls']} computed vs {result['reused_calls']} reused",
        f"approximate mode: reuse rate {result['approx_reuse_rate']} "
        f"({result['approx_computed']} computed, {result['approx_skipped']} never rendered, "
        f"stride up to {result['max_stride_used']}), parity {result['approx_parity']}",
        f"nn inference: {result['nn_train_ms']}ms train-mode vs "
        f"{result['nn_infer_ms']}ms eval-mode predict_batch "
        f"({result['nn_speedup']}x, counts equal: {result['nn_counts_equal']})",
    ]
    return "\n".join(lines)


def test_temporal_delta_execution(benchmark, bench_config, pytestconfig):
    result = benchmark.pedantic(run, args=(bench_config,), rounds=1, iterations=1)
    print_rows("Temporal-coherence delta execution + NN inference fast path", format_rows(result))
    write_bench_json(
        pytestconfig,
        "temporal_delta",
        params={
            "frames": result["frames"],
            "exact_reuse_rate": result["exact_reuse_rate"],
            "nn_speedup": result["nn_speedup"],
        },
        wall_seconds=bench_wall_seconds(benchmark),
        simulated_seconds=result["exact_s"],
        speedup=result["cost_reduction"],
    )
    # Exact mode is bit-identical to the non-temporal executor.
    assert result["exact_parity"]
    # The headline: >= 3x simulated detector+filter cost reduction.
    assert result["cost_reduction"] >= 3.0
    # Approximate mode reports substantial reuse and skipped frames.
    assert result["approx_reuse_rate"] >= 0.5
    assert result["approx_skipped"] > 0
    # The avoided work is accounted as reused calls.
    assert result["reused_calls"] > 0
    # NN inference fast path: >= 1.5x wall-clock on predict_batch.
    assert result["nn_speedup"] >= 1.5
    assert result["nn_counts_equal"]
