"""Section IV-A benchmark: filter-based spatial-constraint check accuracy."""

from __future__ import annotations

from benchmarks.conftest import bench_wall_seconds, print_rows, write_bench_json
from repro.experiments import constraint_check


def test_constraint_check_accuracy(benchmark, bench_config, pytestconfig):
    result = benchmark.pedantic(
        constraint_check.run, args=(bench_config,), rounds=1, iterations=1
    )
    print_rows("Constraint check — 'car left of bus' vs exact evaluation", str(result))
    write_bench_json(
        pytestconfig,
        "constraint_accuracy",
        params={"accuracy": result["accuracy"]},
        wall_seconds=bench_wall_seconds(benchmark),
    )
    # The paper reports 99 % agreement; the linear-head reproduction should
    # stay well above chance and in the same qualitative band.
    assert result["accuracy"] >= 0.8
