"""Chaos soak benchmark: recovery overhead of self-healing execution.

Runs the standing-query soak (two streams, eight queries, one stream on
the supervised process-backend parallel engine) twice — once clean, once
under a seeded :class:`~repro.faults.FaultInjector` that fires a
recoverable fault at every site (decode, filter, detector, process-worker
crash, worker stall, queue stall, emitter raise, shard crash) — and
reports the wall-clock overhead the recovery machinery pays.

The assertions pin the zero-loss contract: every scheduled fault fires,
nothing is quarantined or dropped, every chunk is processed, and the
chaos run's per-query results are bit-identical to the clean run's.
"""

from __future__ import annotations

import dataclasses
import time
import warnings

from benchmarks.conftest import print_rows, write_bench_json
from repro.faults import FaultInjector, RetryPolicy
from repro.query import ParallelConfig, PlannerConfig, QueryBuilder, QueryPlanner
from repro.service import BufferEmitter, QueryService, StreamConfig

STREAMS = ("north", "south")
QUERIES_PER_STREAM = 4
CHUNK_SIZE = 8
QUEUE_CHUNKS = 4
TOTAL_FRAMES = 240
FEED_BATCH = 24
CHAOS_RETRY = RetryPolicy(max_attempts=3, backoff_ms=1.0, backoff_factor=2.0)
STALL_SECONDS = 1.2
WORKER_TIMEOUT_SECONDS = 0.5

#: One recoverable fault per site (no poison: this benchmark pins the
#: zero-loss path; quarantine behaviour is covered by the test suite).
CHAOS_SCHEDULE = {
    ("decode", 7): 1,
    ("filter", 16): 1,
    ("detector", 37): 1,
    ("worker_crash", 3): 1,
    ("worker_stall", 11): 1,
    ("queue_stall", 2): 1,
    ("emitter", 6): 1,
    ("shard_crash", "north:12"): 1,
}


def _looped_frames(stream, total):
    base = [stream.frame(index) for index in range(len(stream))]
    return [
        dataclasses.replace(base[index % len(base)], index=index)
        for index in range(total)
    ]


def _one_pass(context, planner) -> dict[str, object]:
    """One soak pass under whatever injector is (or is not) installed."""
    service = QueryService(emitters=[BufferEmitter()])
    parallel = ParallelConfig(
        num_workers=2,
        backend="process",
        chunk_size=CHUNK_SIZE,
        supervise=True,
        worker_timeout_seconds=WORKER_TIMEOUT_SECONDS,
    )
    handles: dict[str, list[int]] = {}
    for name in STREAMS:
        service.attach_stream(
            name,
            context.reference_detector(seed_offset=800),
            StreamConfig(
                chunk_size=CHUNK_SIZE,
                queue_chunks=QUEUE_CHUNKS,
                policy="block",
                parallel=parallel if name == "south" else None,
            ),
        )
        handles[name] = []
        for position in range(QUERIES_PER_STREAM):
            query = (
                QueryBuilder(f"{name}_q{position}")
                .count("car").at_least(1 + position % 2)
                .build()
            )
            # north_q0 runs cascade-free so the detector-site fault surely
            # targets a frame that reaches the detector.
            cascade = (
                None if (name, position) == ("north", 0) else planner.plan(query)
            )
            handles[name].append(service.register(name, query, cascade))

    frames = _looped_frames(context.dataset.test, TOTAL_FRAMES)
    service.start()
    started = time.perf_counter()
    for start in range(0, TOTAL_FRAMES, FEED_BATCH):
        batch = frames[start : start + FEED_BATCH]
        for name in STREAMS:
            service.feed(name, batch)
    service.stop(drain=True)
    wall_seconds = time.perf_counter() - started

    stats = {name: service.stats().streams[name] for name in STREAMS}
    results = service.close()
    simulated_ms = sum(
        results[handle].stats.simulated_cost.total_ms
        for name in STREAMS
        for handle in handles[name]
    )
    for name in STREAMS:
        assert stats[name].chunks_processed == TOTAL_FRAMES // CHUNK_SIZE
        assert stats[name].dropped_chunks == 0
        assert stats[name].quarantined_chunks == 0  # zero loss
        assert stats[name].queue_depth == 0
    return {
        "wall_s": wall_seconds,
        "simulated_ms": simulated_ms,
        "matched": {
            name: [results[handle].matched_frames for handle in handles[name]]
            for name in STREAMS
        },
        "scanned": {
            name: [results[handle].stats.frames_scanned for handle in handles[name]]
            for name in STREAMS
        },
    }


def run(config) -> dict[str, object]:
    from repro.experiments.context import get_context

    context = get_context("jackson", config)
    planner = QueryPlanner(context.filters, PlannerConfig(count_tolerance=1))

    clean = _one_pass(context, planner)
    injector = FaultInjector(
        seed=11, schedule=CHAOS_SCHEDULE, stall_seconds=STALL_SECONDS,
        retry=CHAOS_RETRY,
    )
    with warnings.catch_warnings():
        # The injected emitter raise warns once by design; a benchmark run
        # is not the place to surface it.
        warnings.simplefilter("ignore", RuntimeWarning)
        with injector:
            chaos = _one_pass(context, planner)

    # Every scheduled fault fired, and recovery was bit-exact.
    assert injector.unfired() == ()
    report = injector.report()
    assert report.exhausted == 0
    assert report.respawns >= 2 and report.redispatches >= 2
    assert chaos["matched"] == clean["matched"]
    assert chaos["scanned"] == clean["scanned"]

    return {
        "streams": len(STREAMS),
        "standing_queries": len(STREAMS) * QUERIES_PER_STREAM,
        "frames": TOTAL_FRAMES * len(STREAMS),
        "faults_injected": report.injected_count,
        "retries": report.retries,
        "recovered": report.recovered,
        "respawns": report.respawns,
        "redispatches": report.redispatches,
        "backoff_ms": round(report.backoff_ms, 3),
        "clean_wall_s": round(clean["wall_s"], 3),
        "chaos_wall_s": round(chaos["wall_s"], 3),
        "overhead_x": round(chaos["wall_s"] / clean["wall_s"], 3),
        "simulated_s": round(chaos["simulated_ms"] / 1000.0, 2),
    }


def format_rows(result: dict[str, object]) -> str:
    return "\n".join(
        [
            f"{'':<16}{'clean':>10}{'chaos':>10}",
            f"{'wall seconds':<16}{result['clean_wall_s']:>10}{result['chaos_wall_s']:>10}",
            (
                f"{result['faults_injected']} faults injected at 8 sites: "
                f"{result['retries']} retries, {result['respawns']} pool respawns, "
                f"{result['redispatches']} re-dispatches, "
                f"{result['backoff_ms']}ms simulated backoff"
            ),
            (
                f"recovery overhead {result['overhead_x']}x wall "
                f"({result['frames']} frames, {result['standing_queries']} standing "
                "queries, zero loss, bit-identical results)"
            ),
        ]
    )


def test_chaos_soak_recovery_overhead(benchmark, bench_config, pytestconfig):
    result = benchmark.pedantic(run, args=(bench_config,), rounds=1, iterations=1)
    print_rows("Chaos soak (faults at every site, zero loss)", format_rows(result))
    write_bench_json(
        pytestconfig,
        "chaos_soak",
        params={
            "streams": result["streams"],
            "standing_queries": result["standing_queries"],
            "frames": result["frames"],
            "chunk_size": CHUNK_SIZE,
            "faults_injected": result["faults_injected"],
            "retries": result["retries"],
            "respawns": result["respawns"],
            "redispatches": result["redispatches"],
            "backoff_ms": result["backoff_ms"],
            "clean_wall_s": result["clean_wall_s"],
            "chaos_wall_s": result["chaos_wall_s"],
            "overhead_x": result["overhead_x"],
        },
        wall_seconds=result["chaos_wall_s"],
        simulated_seconds=result["simulated_s"],
        speedup=None,
    )
