"""Filter and detector throughput benchmark (the latency numbers of Section IV).

This is the one benchmark that measures *wall-clock* per-frame cost of this
reproduction's own components (backbone feature extraction + branch heads),
alongside the simulated latencies inherited from the paper.  It quantifies
the frame-processing-rate increase that makes the filter cascade worthwhile.
"""

from __future__ import annotations

from benchmarks.conftest import bench_wall_seconds, write_bench_json
from repro.experiments.context import get_context


def test_od_filter_throughput(benchmark, bench_config, pytestconfig):
    context = get_context("jackson", bench_config)
    frame = context.dataset.test.frame(5)
    od = context.od_filter
    prediction = benchmark(od.predict, frame)
    assert prediction.total_count >= 0
    write_bench_json(
        pytestconfig,
        "od_filter_throughput",
        params={"per_frame": True},
        wall_seconds=bench_wall_seconds(benchmark),
    )


def test_ic_filter_throughput(benchmark, bench_config, pytestconfig):
    context = get_context("jackson", bench_config)
    frame = context.dataset.test.frame(5)
    ic = context.ic_filter
    prediction = benchmark(ic.predict, frame)
    assert prediction.total_count >= 0
    write_bench_json(
        pytestconfig,
        "ic_filter_throughput",
        params={"per_frame": True},
        wall_seconds=bench_wall_seconds(benchmark),
    )


def test_reference_detector_throughput(benchmark, bench_config, pytestconfig):
    context = get_context("jackson", bench_config)
    frame = context.dataset.test.frame(5)
    detector = context.reference_detector()
    detections = benchmark(detector.detect, frame)
    assert detections.count >= 0
    write_bench_json(
        pytestconfig,
        "reference_detector_throughput",
        params={"per_frame": True},
        wall_seconds=bench_wall_seconds(benchmark),
    )


def test_frame_rendering_throughput(benchmark, bench_config, pytestconfig):
    context = get_context("jackson", bench_config)
    stream = context.dataset.test
    frame = benchmark(stream.frame, 10)
    assert frame.image.shape[2] == 3
    write_bench_json(
        pytestconfig,
        "frame_rendering_throughput",
        params={"per_frame": True, "cached": stream.frame_cache_size > 0},
        wall_seconds=bench_wall_seconds(benchmark),
    )
