"""Figures 12–15 benchmark: per-class localisation (CLF) F1 for IC and OD filters."""

from __future__ import annotations

from benchmarks.conftest import bench_wall_seconds, print_rows, write_bench_json
from repro.experiments import fig15


def test_fig15_localization_f1(benchmark, bench_config, pytestconfig):
    rows = benchmark.pedantic(fig15.run, args=(bench_config,), rounds=1, iterations=1)
    print_rows("Figures 12-15 — localisation F1", fig15.format_rows(rows))
    write_bench_json(
        pytestconfig,
        "fig15_localization",
        params={"rows": len(rows)},
        wall_seconds=bench_wall_seconds(benchmark),
    )
    assert len(rows) == 2 * (1 + 2 + 3)
    by_key = {(r["dataset"], r["filter"], r["class"]): r for r in rows}
    for row in rows:
        # Tolerant matching can only help.
        assert row["f1"] <= row["f1_manhattan_1"] + 1e-9
        assert row["f1_manhattan_1"] <= row["f1_manhattan_2"] + 1e-9
    # The paper's central localisation result: OD filters localise better than
    # IC filters (checked on the dominant class of each dataset).
    for dataset, cls in (("coral", "person"), ("jackson", "car"), ("detrac", "car")):
        assert (
            by_key[(dataset, "OD-CLF", cls)]["f1"]
            >= by_key[(dataset, "IC-CLF", cls)]["f1"] - 0.05
        )
