"""Figures 8–11 benchmark: per-class count (CCF) accuracy for IC and OD filters."""

from __future__ import annotations

from benchmarks.conftest import bench_wall_seconds, print_rows, write_bench_json
from repro.experiments import fig11


def test_fig11_per_class_count_accuracy(benchmark, bench_config, pytestconfig):
    rows = benchmark.pedantic(fig11.run, args=(bench_config,), rounds=1, iterations=1)
    print_rows("Figures 8-11 — per-class count accuracy", fig11.format_rows(rows))
    write_bench_json(
        pytestconfig,
        "fig11_class_counts",
        params={"rows": len(rows)},
        wall_seconds=bench_wall_seconds(benchmark),
    )
    # 2 filters per dataset, one row per class: coral 1, jackson 2, detrac 3.
    assert len(rows) == 2 * (1 + 2 + 3)
    for row in rows:
        assert 0.0 <= row["exact"] <= row["within_1"] <= row["within_2"] <= 1.0
    # Rare classes have low per-frame counts and are therefore easy to count
    # within +-1 (the paper's observation about less popular classes).
    rare = [r for r in rows if (r["dataset"], r["class"]) in (("detrac", "truck"), ("jackson", "person"))]
    assert all(r["within_1"] >= 0.7 for r in rare)
