"""Figure 7 benchmark: accuracy of the object-count filters (OD-COF, IC-CF, OD-CF)."""

from __future__ import annotations

from benchmarks.conftest import bench_wall_seconds, print_rows, write_bench_json
from repro.experiments import fig7


def test_fig7_count_filter_accuracy(benchmark, bench_config, pytestconfig):
    rows = benchmark.pedantic(fig7.run, args=(bench_config,), rounds=1, iterations=1)
    print_rows("Figure 7 — count filter accuracy", fig7.format_rows(rows))
    write_bench_json(
        pytestconfig,
        "fig07_count_filters",
        params={"rows": len(rows)},
        wall_seconds=bench_wall_seconds(benchmark),
    )
    assert len(rows) == 9  # 3 datasets x 3 filters
    by_key = {(r["dataset"], r["filter"]): r for r in rows}
    for row in rows:
        # Accuracy must rise (weakly) with the tolerance band, as in the paper.
        assert row["exact"] <= row["within_1"] + 1e-9
        assert row["within_1"] <= row["within_2"] + 1e-9
    # On the easy dataset (Jackson) every filter is accurate within +-1.
    for filter_name in ("OD-COF", "IC-CF", "OD-CF"):
        assert by_key[("jackson", filter_name)]["within_1"] >= 0.8
    # On Detrac (many objects) the count-only OD-COF must not beat OD-CF at +-1,
    # the paper's headline observation for this figure.
    assert (
        by_key[("detrac", "OD-COF")]["within_1"]
        <= by_key[("detrac", "OD-CF")]["within_1"] + 0.05
    )
