"""Ablation benchmarks: branch depth / grid resolution, threshold, cascade tolerance."""

from __future__ import annotations

from benchmarks.conftest import bench_wall_seconds, print_rows, write_bench_json
from repro.experiments import ablation


def test_ablation_branch_depth(benchmark, bench_config, pytestconfig):
    rows = benchmark.pedantic(
        ablation.run_branch_depth, args=(bench_config,), rounds=1, iterations=1
    )
    print_rows("Ablation — backbone spatial resolution", "\n".join(map(str, rows)))
    write_bench_json(
        pytestconfig,
        "ablation_branch_depth",
        params={"rows": len(rows)},
        wall_seconds=bench_wall_seconds(benchmark),
    )
    assert len(rows) == 3
    finest = min(rows, key=lambda r: r["pool_factor"])
    coarsest = max(rows, key=lambda r: r["pool_factor"])
    # Coarser feature grids lose localisation quality (the paper's grid-size
    # trade-off when branching at deeper layers).
    assert coarsest["micro_f1"] <= finest["micro_f1"] + 0.05


def test_ablation_threshold_sweep(benchmark, bench_config, pytestconfig):
    rows = benchmark.pedantic(
        ablation.run_threshold_sweep, args=(bench_config,), rounds=1, iterations=1
    )
    print_rows("Ablation — grid occupancy threshold", "\n".join(map(str, rows)))
    assert any(row.get("best") for row in rows)
    write_bench_json(
        pytestconfig,
        "ablation_threshold_sweep",
        params={"rows": len(rows)},
        wall_seconds=bench_wall_seconds(benchmark),
    )


def test_ablation_cascade_tolerance(benchmark, bench_config, pytestconfig):
    rows = benchmark.pedantic(
        ablation.run_cascade_tolerance, args=(bench_config,), rounds=1, iterations=1
    )
    print_rows("Ablation — cascade tolerance vs accuracy/speedup", "\n".join(map(str, rows)))
    write_bench_json(
        pytestconfig,
        "ablation_cascade_tolerance",
        params={"rows": len(rows)},
        wall_seconds=bench_wall_seconds(benchmark),
    )
    assert len(rows) == 5
    # Looser tolerances can only admit more frames (weakly lower speedup,
    # weakly higher accuracy).
    strict = rows[0]
    loose = rows[-1]
    assert loose["accuracy"] >= strict["accuracy"] - 1e-9
