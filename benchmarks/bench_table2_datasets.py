"""Table II benchmark: dataset materialisation and statistics reproduction."""

from __future__ import annotations

from benchmarks.conftest import bench_wall_seconds, print_rows, write_bench_json
from repro.experiments import table2


def test_table2_dataset_characteristics(benchmark, bench_config, pytestconfig):
    rows = benchmark.pedantic(table2.run, args=(bench_config,), rounds=1, iterations=1)
    print_rows("Table II — dataset characteristics", table2.format_rows(rows))
    write_bench_json(
        pytestconfig,
        "table2_datasets",
        params={"datasets": len(rows)},
        wall_seconds=bench_wall_seconds(benchmark),
    )
    assert len(rows) == 3
    for row in rows:
        # The synthetic streams must match the paper's per-frame statistics.
        assert abs(row["obj_per_frame_mean"] - row["paper_obj_per_frame_mean"]) < 1.0
        assert abs(row["obj_per_frame_std"] - row["paper_obj_per_frame_std"]) < 1.5
