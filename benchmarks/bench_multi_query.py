"""Multi-query shared execution benchmark: one scan serving a q1–q7-style workload.

Seven concurrent monitoring queries in the spirit of the paper's q1–q7 —
count, region and spatial-order predicates over the same camera — run over
one Jackson-profile stream twice:

* *independent*: seven ``StreamingQueryExecutor.execute`` calls, each
  re-rendering every frame, re-running the shared OD filter and re-invoking
  the detector on its own cascade survivors (the paper's single-query
  regime, N times);
* *shared*: one ``execute_many`` call in which every frame is materialised
  once, the OD filter — shared by all seven cascades — is evaluated at most
  once per frame, and the detector runs once per frame on the union of all
  cascade survivors.

The assertions pin the contract: per-query matched frames are identical in
both regimes, the shared filter never runs twice on a frame, the detector
runs at most once per frame, and the shared run's simulated cost is at least
2x below the independent total on this workload.
"""

from __future__ import annotations

from benchmarks.conftest import count_filter_frames, print_rows, write_bench_json
from repro.query import (
    PlannerConfig,
    QueryBuilder,
    QueryPlanner,
    StreamingQueryExecutor,
    parse_query,
)
from repro.spatial.regions import Quadrant, quadrant_region

BATCH_SIZE = 16

WINDOWED_TEXT = """
SELECT cameraID, frameID
FROM (PROCESS inputVideo PRODUCE cameraID, frameID, vehBox1 USING VehDetector)
WINDOW HOPPING (SIZE 40, ADVANCE BY 20)
WHERE COUNT(car) >= 1
"""


def _build_workload(context):
    """Seven q1–q7-style queries over one stream (all on the Jackson classes)."""
    profile = context.dataset.profile
    lower_left = quadrant_region(Quadrant.LOWER_LEFT, profile.frame_width, profile.frame_height)
    return [
        QueryBuilder("m1").count("person").equals(2).build(),
        QueryBuilder("m2").in_region("person", lower_left).exactly(2).build(),
        QueryBuilder("m3").count("car").equals(1).count("person").equals(1).build(),
        QueryBuilder("m4").count("car").at_least(1).count("person").at_least(1).build(),
        QueryBuilder("m5")
        .count("car").equals(1)
        .count("person").equals(1)
        .spatial("car").left_of("person")
        .build(),
        QueryBuilder("m6").count("car").greater_than(1).build(),
        parse_query(WINDOWED_TEXT, name="m7"),
    ]


def run(config) -> dict[str, object]:
    from repro.experiments.context import get_context

    context = get_context("jackson", config)
    stream = context.dataset.test
    queries = _build_workload(context)
    planner = QueryPlanner(
        context.filters, PlannerConfig(count_tolerance=1, location_dilation=1)
    )
    cascades = [planner.plan(query) for query in queries]

    # Independent executions: the baseline the sharing is measured against.
    independent = []
    for query, cascade in zip(queries, cascades):
        executor = StreamingQueryExecutor(context.reference_detector(seed_offset=700))
        independent.append(executor.execute(query, stream, cascade, batch_size=BATCH_SIZE))

    # One shared scan, with the shared OD filter instrumented.
    counts: dict[int, int] = {}
    restore = count_filter_frames(context.od_filter, counts)
    try:
        multi = StreamingQueryExecutor(
            context.reference_detector(seed_offset=700)
        ).execute_many(queries, stream, cascades, batch_size=BATCH_SIZE)
    finally:
        restore()

    rows = []
    for query, solo, shared_result in zip(queries, independent, multi):
        rows.append(
            {
                "query": query.name,
                "cascade": shared_result.cascade_description,
                "matches": shared_result.num_matches,
                "parity": shared_result.matched_frames == solo.matched_frames,
                "attributed_s": round(shared_result.stats.simulated_seconds, 2),
                "independent_s": round(solo.stats.simulated_seconds, 2),
            }
        )
    return {
        "rows": rows,
        "frames": len(stream),
        "unique_steps": multi.shared.unique_steps,
        "total_steps": multi.shared.total_steps,
        "shared_detector_invocations": multi.shared.detector_invocations,
        "independent_detector_invocations": sum(
            result.stats.detector_invocations for result in independent
        ),
        "max_filter_evals_per_frame": max(counts.values()) if counts else 0,
        "shared_s": round(multi.shared.cost.shared_ms / 1000.0, 2),
        "independent_s": round(
            sum(result.stats.simulated_seconds for result in independent), 2
        ),
        "savings_ratio": round(multi.shared.savings_ratio, 2),
        "shared_wall_s": round(multi.shared.wall_clock_seconds, 3),
        "independent_wall_s": round(
            sum(result.stats.wall_clock_seconds for result in independent), 3
        ),
    }


def format_rows(result: dict[str, object]) -> str:
    lines = [
        f"{'query':<6}{'cascade':<26}{'matches':>8}{'parity':>8}"
        f"{'attr(s)':>9}{'solo(s)':>9}"
    ]
    for row in result["rows"]:
        lines.append(
            f"{row['query']:<6}{row['cascade']:<26}{row['matches']:>8}"
            f"{str(row['parity']):>8}{row['attributed_s']:>9}{row['independent_s']:>9}"
        )
    lines.append(
        f"{len(result['rows'])} queries over {result['frames']} frames: "
        f"{result['unique_steps']}/{result['total_steps']} unique cascade steps, "
        f"detector {result['shared_detector_invocations']} shared vs "
        f"{result['independent_detector_invocations']} independent invocations, "
        f"max {result['max_filter_evals_per_frame']} OD eval/frame"
    )
    lines.append(
        f"simulated {result['shared_s']}s shared vs {result['independent_s']}s independent "
        f"({result['savings_ratio']}x); wall-clock {result['shared_wall_s']}s vs "
        f"{result['independent_wall_s']}s"
    )
    return "\n".join(lines)


def test_multi_query_shared_execution(benchmark, bench_config, pytestconfig):
    result = benchmark.pedantic(run, args=(bench_config,), rounds=1, iterations=1)
    print_rows("Multi-query shared execution (q1–q7-style workload)", format_rows(result))
    write_bench_json(
        pytestconfig,
        "multi_query",
        params={"queries": len(result["rows"]), "frames": result["frames"]},
        wall_seconds=result["shared_wall_s"],
        simulated_seconds=result["shared_s"],
        speedup=result["savings_ratio"],
    )
    # Exact per-query parity with independent execution.
    assert all(row["parity"] for row in result["rows"])
    # The detector ran at most once per frame, and never more than the
    # independent executions needed in total.
    assert result["shared_detector_invocations"] <= result["frames"]
    assert (
        result["shared_detector_invocations"]
        <= result["independent_detector_invocations"]
    )
    # The shared OD filter was evaluated at most once per frame despite
    # appearing in all seven cascades.
    assert result["max_filter_evals_per_frame"] == 1
    # Cross-query dedup collapsed at least one pair of equal steps (m3/m5
    # share their CCF check).
    assert result["unique_steps"] < result["total_steps"]
    # The headline: >= 2x simulated-cost reduction on the shared run.
    assert result["savings_ratio"] >= 2.0
