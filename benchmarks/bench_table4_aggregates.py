"""Table IV benchmark: aggregate queries with control-variate variance reduction."""

from __future__ import annotations

from benchmarks.conftest import bench_wall_seconds, print_rows, write_bench_json
from repro.experiments import table4


def test_table4_aggregate_variance_reduction(benchmark, bench_config, pytestconfig):
    rows = benchmark.pedantic(
        table4.run,
        args=(bench_config,),
        kwargs={"sample_size": 50, "repetitions": 12},
        rounds=1,
        iterations=1,
    )
    print_rows("Table IV — control-variate aggregate estimation", table4.format_rows(rows))
    write_bench_json(
        pytestconfig,
        "table4_aggregates",
        params={
            "queries": len(rows),
            "sample_size": 50,
            "repetitions": 12,
            "mean_variance_reduction": round(
                sum(row["variance_reduction"] for row in rows) / len(rows), 2
            ),
        },
        wall_seconds=bench_wall_seconds(benchmark),
    )
    assert len(rows) == 5
    for row in rows:
        # The per-sample cost is dominated by the reference detector (200 ms);
        # the filters add only ~2 ms, as in the paper's 201.6/202.2 ms rows.
        assert 200.0 <= row["per_frame_ms"] <= 210.0
        assert row["variance_reduction"] >= 0.9
    # Control variates help substantially on at least some of the queries.
    assert sum(1 for row in rows if row["variance_reduction"] >= 3.0) >= 2
