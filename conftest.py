"""Repo-root pytest configuration.

Lives at the root (not under ``tests/`` or ``benchmarks/``) because two
things here must be active for *any* invocation target:

* the ``--json`` option — benchmark modules write a machine-readable
  ``BENCH_<name>.json`` next to their human-readable table when it is given
  (see ``benchmarks/conftest.py::write_bench_json``), and options can only be
  registered from an initial conftest;
* the marker registry — ``pytest -m parallel`` selects the parallel
  execution-engine tests (CI runs them as a dedicated job), ``slow`` guards
  the long neural-filter trainings.
"""

from __future__ import annotations


def pytest_addoption(parser):
    parser.addoption(
        "--json",
        action="store",
        default=None,
        metavar="PATH",
        help=(
            "write each benchmark's BENCH_<name>.json to PATH (a directory, "
            "or a file path when running a single benchmark)"
        ),
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "parallel: parallel pipelined execution engine tests"
    )
    config.addinivalue_line("markers", "slow: long-running training tests")
    config.addinivalue_line(
        "markers", "chaos: fault-injection soak tests (CI runs them as a dedicated job)"
    )
